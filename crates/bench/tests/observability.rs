//! Acceptance tests for the observability layer's two core promises:
//!
//! * **Jobs invariance** — histograms, gauge series, and the span
//!   profile's deterministic columns are bit-identical whether a sweep
//!   runs on one worker or four, so instrumented baselines can be
//!   regenerated in parallel without drift.
//! * **Zero observer effect** — turning gauges on changes nothing about
//!   the simulation itself: records, frames, and every deterministic
//!   outcome byte match an uninstrumented run on the same seeds.
//!
//! Plus the committed-baseline gate: every `BENCH_*.json` in the repo
//! root must parse with the in-tree JSON reader and self-diff clean
//! through `benchdiff` — the same path CI's perf-smoke job exercises.

use datagen::{DataSpec, Distribution};
use dist_skyline::config::ObsConfig;
use dist_skyline::runtime::run_experiment;
use msq_bench::scalebench::ScaleCell;
use msq_bench::{benchdiff, scalebench, sweep};
use sim_obs::ProfileReport;
use skyline_core::TupleBlock;
use std::sync::Mutex;

/// Span state is process-global; tests that enable collection (or whose
/// instrumented work would pollute an enabled collector) serialize here.
static OBS_LOCK: Mutex<()> = Mutex::new(());

/// Debug-build cells: small networks, short horizon, same code path as
/// the real scale grid.
fn small_cells() -> Vec<ScaleCell> {
    [3usize, 4]
        .iter()
        .map(|&g| ScaleCell { g, cardinality: 1_500, dim: 2, sim_seconds: 240.0 })
        .collect()
}

#[test]
fn histograms_and_gauges_are_bit_identical_across_jobs() {
    let _l = OBS_LOCK.lock().unwrap();
    let cells = small_cells();
    let go = |stage: &str, jobs| {
        sweep::run_stage(stage, jobs, &cells, |c| {
            let mut exp = scalebench::experiment(c);
            exp.obs = ObsConfig::sampled();
            run_experiment(&exp)
        })
    };
    let seq = go("obs_jobs1", 1);
    let par = go("obs_jobs4", 4);
    let _ = sweep::take_stage_records();
    assert_eq!(seq.len(), par.len());
    for (s, p) in seq.iter().zip(&par) {
        assert_eq!(s.response_hist, p.response_hist);
        assert_eq!(s.reply_hops_hist, p.reply_hops_hist);
        assert_eq!(s.reply_latency_hist, p.reply_latency_hist);
        assert_eq!(s.gauges, p.gauges, "gauge series must not depend on worker count");
        // The comparisons are not vacuous: queries completed and samples
        // landed.
        assert!(s.response_hist.count() > 0, "no completed queries recorded");
        assert!(s.reply_hops_hist.count() > 0, "no reply hops recorded");
        let log = s.gauges.as_ref().expect("gauges were on");
        assert!(!log.rows.is_empty(), "sampler produced no rows");
        assert!(log.max_value("wheel.pending").is_some());
        assert!(log.max_value("energy.total_j").unwrap_or(0.0) > 0.0);
    }
}

#[test]
fn gauge_sampling_has_zero_observer_effect() {
    let _l = OBS_LOCK.lock().unwrap();
    let cell = small_cells()[0];
    let run = |gauges: bool| {
        let mut exp = scalebench::experiment(&cell);
        if gauges {
            exp.obs = ObsConfig::sampled();
        }
        run_experiment(&exp)
    };
    let off = run(false);
    let on = run(true);
    assert!(off.gauges.is_none(), "gauges default off");
    assert!(on.gauges.is_some());
    // The stepping sampler must process exactly the events the single
    // run_until processes, in the same order: every deterministic outcome
    // matches bit-for-bit.
    assert_eq!(off.records, on.records);
    assert_eq!(off.net.frames_sent, on.net.frames_sent);
    assert_eq!(off.net.aodv_frames, on.net.aodv_frames);
    assert_eq!(off.total_forward_messages, on.total_forward_messages);
    assert_eq!(off.total_result_messages, on.total_result_messages);
    assert_eq!(off.drr.to_bits(), on.drr.to_bits());
    assert_eq!(off.total_energy_joules.to_bits(), on.total_energy_joules.to_bits());
    assert_eq!(off.response_hist, on.response_hist);
    assert_eq!(off.reply_hops_hist, on.reply_hops_hist);
}

#[test]
fn span_profile_deterministic_columns_are_jobs_invariant() {
    let _l = OBS_LOCK.lock().unwrap();
    let cells = small_cells();
    let kernel_block = {
        let data = DataSpec::local_experiment(200, 3, Distribution::Independent, 0xB10C).generate();
        TupleBlock::from_tuples(&data)
    };
    let profile_of = |stage: &str, jobs| {
        sim_obs::set_enabled(true);
        let _ = ProfileReport::collect_and_reset();
        let outs =
            sweep::run_stage(stage, jobs, &cells, |c| run_experiment(&scalebench::experiment(c)));
        // The manet runtime folds replies through `SkylineMerger`; the
        // block kernels run in the bench/monitor paths. Exercise one here
        // so `core::*` spans land in the same report.
        let sky = skyline_core::algo::bnl::block_skyline_indices(&kernel_block);
        sim_obs::set_enabled(false);
        let rep = ProfileReport::collect_and_reset();
        assert!(!outs.is_empty() && !sky.is_empty());
        rep
    };
    let rep1 = profile_of("span_jobs1", 1);
    let rep4 = profile_of("span_jobs4", 4);
    let _ = sweep::take_stage_records();
    // calls/bytes/units are pure functions of the simulated work and merge
    // by addition — identical at any worker count. wall_ns is volatile and
    // deliberately excluded.
    assert_eq!(rep1.deterministic_columns(), rep4.deterministic_columns());
    for name in ["wheel::cascade", "radio::deliver", "aodv::send", "grid::query"] {
        let row = rep1.row(name).unwrap_or_else(|| panic!("span `{name}` never fired"));
        assert!(row.calls > 0);
    }
    let bnl = rep1.row("core::block_bnl").expect("kernel span fired");
    assert!(bnl.calls > 0 && bnl.units > 0);
}

#[test]
fn committed_baselines_parse_and_self_diff_clean() {
    let root = concat!(env!("CARGO_MANIFEST_DIR"), "/../..");
    for name in
        ["BENCH_core", "BENCH_sweep", "BENCH_chaos", "BENCH_attack", "BENCH_monitor", "BENCH_scale"]
    {
        let path = format!("{root}/{name}.json");
        let text = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("{name}.json missing from repo root: {e}"));
        let rep = benchdiff::diff_texts(&text, &text, 0.5)
            .unwrap_or_else(|e| panic!("{name}.json refused its own diff: {e}"));
        assert!(rep.passed(), "{name}.json self-diff found findings: {rep:?}");
    }
}
