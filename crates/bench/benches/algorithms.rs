//! Criterion microbench: the centralized baselines (BNL vs. SFS vs. D&C)
//! the paper builds on, plus the bounded-window BNL variant modelling
//! memory-constrained devices.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use datagen::{DataSpec, Distribution};
use skyline_core::algo::{bnl, Algorithm};
use std::hint::black_box;

fn bench_algorithms(c: &mut Criterion) {
    let mut group = c.benchmark_group("centralized_algorithms");
    group.sample_size(10);
    for (tag, dist) in [("IN", Distribution::Independent), ("AC", Distribution::AntiCorrelated)] {
        let data = DataSpec::local_experiment(20_000, 2, dist, 11).generate();
        for algo in Algorithm::ALL {
            group.bench_with_input(BenchmarkId::new(format!("{algo:?}"), tag), &data, |b, d| {
                b.iter(|| black_box(algo.skyline_indices(d).len()))
            });
        }
    }
    group.finish();
}

fn bench_windowed_bnl(c: &mut Criterion) {
    let mut group = c.benchmark_group("bnl_window_pressure");
    group.sample_size(10);
    let data = DataSpec::local_experiment(10_000, 2, Distribution::AntiCorrelated, 13).generate();
    for window in [8usize, 64, 1024] {
        group.bench_with_input(BenchmarkId::from_parameter(window), &window, |b, &w| {
            b.iter(|| black_box(bnl::skyline_indices_windowed(&data, w).len()))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_algorithms, bench_windowed_bnl);
criterion_main!(benches);
