//! Criterion microbench for the contiguous dominance kernels: pairwise
//! `Vec<f64>`-chasing (`dominance::dominates` over per-tuple heap
//! allocations) vs. the row-major [`TupleBlock`] with
//! dimension-specialized kernels, at d = 2..=5, plus a whole-scan BNL
//! local-skyline comparison on 50K tuples.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use datagen::{DataSpec, Distribution};
use skyline_core::algo::bnl;
use skyline_core::dominance::dominates;
use skyline_core::{Tuple, TupleBlock};
use std::hint::black_box;

fn gen(tuples: usize, dims: usize) -> Vec<Tuple> {
    DataSpec::local_experiment(tuples, dims, Distribution::Independent, 0xB_10C).generate()
}

/// All-pairs adjacent dominance tests over 10K tuples — isolates the
/// per-test cost of pointer-chasing vs. contiguous rows.
fn bench_pairwise_kernels(c: &mut Criterion) {
    let mut group = c.benchmark_group("dominance_block_pairwise");
    for dims in 2..=5usize {
        let data = gen(10_000, dims);
        let block = TupleBlock::from_tuples(&data);
        let kernel = block.kernel();
        group.bench_with_input(BenchmarkId::new("tuple_vec", dims), &dims, |b, _| {
            b.iter(|| {
                let mut n = 0u32;
                for w in data.windows(2) {
                    n += u32::from(dominates(
                        black_box(w[0].attrs.as_slice()),
                        black_box(w[1].attrs.as_slice()),
                    ));
                }
                n
            })
        });
        group.bench_with_input(BenchmarkId::new("block_kernel", dims), &dims, |b, _| {
            b.iter(|| {
                let mut n = 0u32;
                for i in 0..block.len() - 1 {
                    n += u32::from(kernel(black_box(block.row(i)), black_box(block.row(i + 1))));
                }
                n
            })
        });
    }
    group.finish();
}

/// Whole-scan effect: BNL local skyline over 50K tuples with the block
/// kernels vs. a scan over the original tuple vector.
fn bench_local_skyline(c: &mut Criterion) {
    let mut group = c.benchmark_group("dominance_block_local_skyline");
    group.sample_size(10);
    for dims in [2usize, 4] {
        let data = gen(50_000, dims);
        let block = TupleBlock::from_tuples(&data);
        group.bench_with_input(BenchmarkId::new("tuple_vec_bnl", dims), &dims, |b, _| {
            b.iter(|| {
                // The pre-block inner loop: chase each candidate's Vec.
                let mut window: Vec<usize> = Vec::new();
                for (i, t) in data.iter().enumerate() {
                    if window.iter().any(|&w| dominates(&data[w].attrs, &t.attrs)) {
                        continue;
                    }
                    window.retain(|&w| !dominates(&t.attrs, &data[w].attrs));
                    window.push(i);
                }
                black_box(window.len())
            })
        });
        group.bench_with_input(BenchmarkId::new("block_bnl", dims), &dims, |b, _| {
            b.iter(|| black_box(bnl::block_skyline_indices(&block).len()))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_pairwise_kernels, bench_local_skyline);
criterion_main!(benches);
