//! Criterion microbench for engine neighbour discovery: the spatial hash
//! grid (superset query + exact Euclidean re-filter, the engine's actual
//! sequence) against the O(n) linear position scan it replaced, at
//! n ∈ {100, 1K, 10K} nodes.
//!
//! Density is held at the paper's value (one device per 100 × 100 m,
//! 250 m radio range) so per-query *degree* stays constant while n grows:
//! the grid should be roughly flat per query, the scan linear in n.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use manet_sim::grid::SpatialGrid;
use manet_sim::Pos;
use std::hint::black_box;

const RANGE: f64 = 250.0;

/// Deterministic uniform scatter on a side × side area.
fn scatter(n: usize, side: f64, seed: u64) -> Vec<Pos> {
    let mut state = seed | 1;
    let mut next = || {
        state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        (state >> 11) as f64 / (1u64 << 53) as f64
    };
    (0..n).map(|_| Pos::new(next() * side, next() * side)).collect()
}

/// One full neighbour round: every node discovers its neighbour set.
fn bench_neighbor_discovery(c: &mut Criterion) {
    let mut group = c.benchmark_group("neighbor_discovery");
    for n in [100usize, 1_000, 10_000] {
        let side = (n as f64).sqrt() * 100.0;
        let positions = scatter(n, side, 0x6E16);
        let mut grid = SpatialGrid::new(RANGE);
        for (i, &p) in positions.iter().enumerate() {
            grid.insert(i, p);
        }
        let r2 = RANGE * RANGE;

        group.bench_with_input(BenchmarkId::new("grid", n), &n, |b, _| {
            let mut cand = Vec::new();
            b.iter(|| {
                let mut found = 0u64;
                for (i, &p) in positions.iter().enumerate() {
                    grid.query_into(black_box(p), RANGE, &mut cand);
                    found += cand.iter().filter(|&&j| j != i && positions[j].dist2(p) <= r2).count()
                        as u64;
                }
                found
            })
        });

        group.bench_with_input(BenchmarkId::new("linear_scan", n), &n, |b, _| {
            b.iter(|| {
                let mut found = 0u64;
                for (i, &p) in positions.iter().enumerate() {
                    found += positions
                        .iter()
                        .enumerate()
                        .filter(|&(j, q)| j != i && q.dist2(black_box(p)) <= r2)
                        .count() as u64;
                }
                found
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_neighbor_discovery);
criterion_main!(benches);
