//! Criterion microbench backing Fig. 5: device-local constrained skyline
//! queries on hybrid (HS) vs. flat (FS) storage, independent and
//! anti-correlated data, across cardinalities and dimensionalities.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use datagen::{DataSpec, Distribution};
use device_storage::{DeviceRelation, FlatRelation, HybridRelation, LocalQuery};
use skyline_core::region::QueryRegion;
use std::hint::black_box;

fn bench_cardinality(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig5a_cardinality");
    group.sample_size(10);
    for card in [10_000usize, 30_000] {
        for (tag, dist) in [("IN", Distribution::Independent), ("AC", Distribution::AntiCorrelated)]
        {
            let data = DataSpec::local_experiment(card, 2, dist, 5).generate();
            let hs = HybridRelation::new(data.clone());
            let fs = FlatRelation::new(data);
            let q = LocalQuery::plain(QueryRegion::unbounded());
            group.bench_with_input(BenchmarkId::new(format!("HS-{tag}"), card), &card, |b, _| {
                b.iter(|| black_box(hs.local_skyline(&q).skyline.len()))
            });
            group.bench_with_input(BenchmarkId::new(format!("FS-{tag}"), card), &card, |b, _| {
                b.iter(|| black_box(fs.local_skyline(&q).skyline.len()))
            });
        }
    }
    group.finish();
}

fn bench_dimensionality(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig5b_dimensionality");
    group.sample_size(10);
    for dim in [2usize, 3, 4] {
        let data = DataSpec::local_experiment(10_000, dim, Distribution::Independent, 5).generate();
        let hs = HybridRelation::new(data.clone());
        let fs = FlatRelation::new(data);
        let q = LocalQuery::plain(QueryRegion::unbounded());
        group.bench_with_input(BenchmarkId::new("HS", dim), &dim, |b, _| {
            b.iter(|| black_box(hs.local_skyline(&q).skyline.len()))
        });
        group.bench_with_input(BenchmarkId::new("FS", dim), &dim, |b, _| {
            b.iter(|| black_box(fs.local_skyline(&q).skyline.len()))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_cardinality, bench_dimensionality);
criterion_main!(benches);
