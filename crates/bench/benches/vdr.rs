//! Criterion microbench: dominating-region volume computation and filter
//! selection (the per-hop work of the filtering-tuple strategy).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use datagen::{DataSpec, Distribution};
use skyline_core::algo::{materialize, Algorithm};
use skyline_core::vdr::{select_filter, vdr_volume, UpperBounds};
use std::hint::black_box;

fn bench_vdr(c: &mut Criterion) {
    let mut group = c.benchmark_group("vdr");
    for dim in [2usize, 5] {
        let data =
            DataSpec::local_experiment(5_000, dim, Distribution::AntiCorrelated, 4).generate();
        let sky = materialize(&data, &Algorithm::Sfs.skyline_indices(&data));
        let bounds = UpperBounds::new(vec![9.9; dim]);
        group.bench_with_input(BenchmarkId::new("volume_one", dim), &sky[0].attrs, |b, attrs| {
            b.iter(|| black_box(vdr_volume(attrs, &bounds)))
        });
        group.bench_with_input(
            BenchmarkId::new(format!("select_from_{}", sky.len()), dim),
            &sky,
            |b, sky| b.iter(|| black_box(select_filter(sky, &bounds))),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_vdr);
criterion_main!(benches);
