//! Criterion microbench: the Fig. 4 dominance-test ablation — the paper's
//! strict rest-dimension test vs. the complete test, and the scan-level
//! effect of each mode.

use criterion::{criterion_group, criterion_main, Criterion};
use datagen::{DataSpec, Distribution};
use device_storage::{DeviceRelation, HybridRelation, LocalQuery};
use skyline_core::dominance::{dominates, paper_strict_dominates_rest};
use skyline_core::region::QueryRegion;
use skyline_core::DominanceTest;
use std::hint::black_box;

fn bench_pairwise(c: &mut Criterion) {
    let mut group = c.benchmark_group("pairwise_tests");
    let data = DataSpec::local_experiment(1_000, 4, Distribution::Independent, 3).generate();
    let pairs: Vec<(&[f64], &[f64])> = data
        .windows(2)
        .map(|w| (w[0].attrs.as_slice(), w[1].attrs.as_slice()))
        .collect();
    group.bench_function("full", |b| {
        b.iter(|| {
            let mut n = 0u32;
            for (a, x) in &pairs {
                n += u32::from(dominates(black_box(a), black_box(x)));
            }
            n
        })
    });
    group.bench_function("paper_strict", |b| {
        b.iter(|| {
            let mut n = 0u32;
            for (a, x) in &pairs {
                n += u32::from(paper_strict_dominates_rest(black_box(a), black_box(x)));
            }
            n
        })
    });
    group.finish();
}

fn bench_scan_modes(c: &mut Criterion) {
    // Whole-scan effect: PaperStrict keeps supersets (cheaper test, more
    // window entries) vs. Full (exact skylines).
    let mut group = c.benchmark_group("fig4_scan_modes");
    group.sample_size(10);
    let data = DataSpec::local_experiment(20_000, 3, Distribution::Independent, 9).generate();
    let hybrid = HybridRelation::new(data);
    for mode in [DominanceTest::PaperStrict, DominanceTest::Full] {
        let mut q = LocalQuery::plain(QueryRegion::unbounded());
        q.dominance = mode;
        group.bench_function(format!("{mode:?}"), |b| {
            b.iter(|| black_box(hybrid.local_skyline(&q).skyline.len()))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_pairwise, bench_scan_modes);
criterion_main!(benches);
