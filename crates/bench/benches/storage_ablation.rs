//! Criterion microbench: the Section 4.1 storage-model ablation — the
//! paper's hybrid scheme vs. the rejected domain and ring schemes (and
//! flat storage as the baseline), quantifying the pointer-chasing argument.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use datagen::{DataSpec, Distribution};
use device_storage::{
    DeviceRelation, DomainRelation, FlatRelation, HybridRelation, LocalQuery, RingRelation,
};
use skyline_core::region::QueryRegion;
use std::hint::black_box;

fn bench_models(c: &mut Criterion) {
    let mut group = c.benchmark_group("storage_models");
    group.sample_size(10);
    let data = DataSpec::local_experiment(10_000, 2, Distribution::Independent, 21).generate();
    let q = LocalQuery::plain(QueryRegion::unbounded());

    let flat = FlatRelation::new(data.clone());
    let hybrid = HybridRelation::new(data.clone());
    let domain = DomainRelation::new(data.clone());
    let ring = RingRelation::new(data);

    group.bench_function(BenchmarkId::new("flat", 10_000), |b| {
        b.iter(|| black_box(flat.local_skyline(&q).skyline.len()))
    });
    group.bench_function(BenchmarkId::new("hybrid", 10_000), |b| {
        b.iter(|| black_box(hybrid.local_skyline(&q).skyline.len()))
    });
    group.bench_function(BenchmarkId::new("domain", 10_000), |b| {
        b.iter(|| black_box(domain.local_skyline(&q).skyline.len()))
    });
    group.bench_function(BenchmarkId::new("ring", 10_000), |b| {
        b.iter(|| black_box(ring.local_skyline(&q).skyline.len()))
    });
    group.finish();
}

fn bench_skip_check(c: &mut Criterion) {
    // The O(n)-comparisons whole-relation skip only hybrid storage offers.
    let mut group = c.benchmark_group("hybrid_skip_fast_path");
    group.sample_size(20);
    let data = DataSpec::local_experiment(50_000, 2, Distribution::Independent, 23).generate();
    let hybrid = HybridRelation::new(data);
    let bounds = skyline_core::vdr::UpperBounds::new(vec![9.9, 9.9]);
    let mut q = LocalQuery::plain(QueryRegion::unbounded());
    q.filter = Some(skyline_core::vdr::FilterTuple::new(vec![-1.0, -1.0], &bounds));
    group.bench_function("dominating_filter_skip", |b| {
        b.iter(|| black_box(hybrid.local_skyline(&q).skipped))
    });
    group.finish();
}

criterion_group!(benches, bench_models, bench_skip_check);
criterion_main!(benches);
