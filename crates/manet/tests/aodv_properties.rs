//! Property tests of AODV over random static topologies: delivery succeeds
//! exactly on connected source–destination pairs, and failure reporting
//! fires otherwise.

use proptest::prelude::*;

use manet_sim::engine::{Application, MsgMeta, NodeCtx, Simulator};
use manet_sim::mobility::{MobilityConfig, Pos};
use manet_sim::radio::RadioConfig;
use manet_sim::{NodeId, SimTime};

#[derive(Default)]
struct Probe {
    received: Vec<u64>,
    failed: Vec<NodeId>,
}

impl Application<u64> for Probe {
    fn on_message(&mut self, _ctx: &mut NodeCtx<u64>, _meta: MsgMeta, payload: u64) {
        self.received.push(payload);
    }
    fn on_timer(&mut self, ctx: &mut NodeCtx<u64>, token: u64) {
        ctx.send_unicast(token as NodeId, 7, 32);
    }
    fn on_delivery_failed(&mut self, _ctx: &mut NodeCtx<u64>, dst: NodeId, _payload: u64) {
        self.failed.push(dst);
    }
}

/// Is `b` reachable from `a` over the unit-disk graph?
fn connected(positions: &[(f64, f64)], range: f64, a: usize, b: usize) -> bool {
    let n = positions.len();
    let mut seen = vec![false; n];
    let mut stack = vec![a];
    seen[a] = true;
    while let Some(i) = stack.pop() {
        if i == b {
            return true;
        }
        for j in 0..n {
            if !seen[j] {
                let dx = positions[i].0 - positions[j].0;
                let dy = positions[i].1 - positions[j].1;
                if dx * dx + dy * dy <= range * range {
                    seen[j] = true;
                    stack.push(j);
                }
            }
        }
    }
    false
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn aodv_delivers_iff_connected(
        // Random static node placements on a 1000 m line-ish strip.
        raw in prop::collection::vec((0.0f64..1000.0, 0.0f64..300.0), 2..12),
        src_sel in any::<prop::sample::Index>(),
        dst_sel in any::<prop::sample::Index>(),
    ) {
        let positions: Vec<(f64, f64)> = raw;
        let n = positions.len();
        let src = src_sel.index(n);
        let dst = dst_sel.index(n);
        prop_assume!(src != dst);

        let mut sim: Simulator<u64, Probe> = Simulator::new(RadioConfig::default(), 7);
        for &(x, y) in &positions {
            sim.add_node(Pos::new(x, y), MobilityConfig::frozen(), Probe::default(), 3);
        }
        sim.schedule_app_timer(src, SimTime::ZERO, dst as u64);
        sim.run_to_completion();

        let reachable = connected(&positions, 250.0, src, dst);
        if reachable {
            prop_assert_eq!(
                &sim.app(dst).received, &vec![7u64],
                "connected pair {}→{} must deliver", src, dst
            );
            prop_assert!(sim.app(src).failed.is_empty());
        } else {
            prop_assert!(sim.app(dst).received.is_empty(),
                "unreachable pair {}→{} must not deliver", src, dst);
            prop_assert_eq!(&sim.app(src).failed, &vec![dst],
                "sender must learn about the failure");
        }
    }

    #[test]
    fn repeated_sends_all_deliver_on_connected_chains(
        hops in 1usize..7,
        sends in 1usize..5,
    ) {
        // A guaranteed-connected chain; every send must arrive exactly once.
        let mut sim: Simulator<u64, Probe> = Simulator::new(RadioConfig::default(), 9);
        for i in 0..=hops {
            sim.add_node(
                Pos::new(i as f64 * 200.0, 0.0),
                MobilityConfig::frozen(),
                Probe::default(),
                5,
            );
        }
        for k in 0..sends {
            sim.schedule_app_timer(0, SimTime::from_secs_f64(k as f64), hops as u64);
        }
        sim.run_to_completion();
        prop_assert_eq!(sim.app(hops).received.len(), sends);
        prop_assert!(sim.app(0).failed.is_empty());
    }
}
