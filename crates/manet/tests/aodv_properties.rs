//! Property tests of AODV over random static topologies: delivery succeeds
//! exactly on connected source–destination pairs, failure reporting fires
//! otherwise, and application-primed reply paths (the BF-flood reverse
//! tree) only ever produce routes the brute-force connectivity oracle
//! agrees are reachable.

use proptest::prelude::*;

use manet_sim::engine::{Application, MsgMeta, NodeCtx, Simulator};
use manet_sim::fault::FaultPlan;
use manet_sim::mobility::{MobilityConfig, Pos};
use manet_sim::radio::RadioConfig;
use manet_sim::{NodeId, SimTime};

#[derive(Default)]
struct Probe {
    received: Vec<u64>,
    failed: Vec<NodeId>,
}

impl Application<u64> for Probe {
    fn on_message(&mut self, _ctx: &mut NodeCtx<u64>, _meta: MsgMeta, payload: u64) {
        self.received.push(payload);
    }
    fn on_timer(&mut self, ctx: &mut NodeCtx<u64>, token: u64) {
        ctx.send_unicast(token as NodeId, 7, 32);
    }
    fn on_delivery_failed(&mut self, _ctx: &mut NodeCtx<u64>, dst: NodeId, _payload: u64) {
        self.failed.push(dst);
    }
}

/// Is `b` reachable from `a` over the unit-disk graph?
fn connected(positions: &[(f64, f64)], range: f64, a: usize, b: usize) -> bool {
    let n = positions.len();
    let mut seen = vec![false; n];
    let mut stack = vec![a];
    seen[a] = true;
    while let Some(i) = stack.pop() {
        if i == b {
            return true;
        }
        for j in 0..n {
            if !seen[j] {
                let dx = positions[i].0 - positions[j].0;
                let dy = positions[i].1 - positions[j].1;
                if dx * dx + dy * dy <= range * range {
                    seen[j] = true;
                    stack.push(j);
                }
            }
        }
    }
    false
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn aodv_delivers_iff_connected(
        // Random static node placements on a 1000 m line-ish strip.
        raw in prop::collection::vec((0.0f64..1000.0, 0.0f64..300.0), 2..12),
        src_sel in any::<prop::sample::Index>(),
        dst_sel in any::<prop::sample::Index>(),
    ) {
        let positions: Vec<(f64, f64)> = raw;
        let n = positions.len();
        let src = src_sel.index(n);
        let dst = dst_sel.index(n);
        prop_assume!(src != dst);

        let mut sim: Simulator<u64, Probe> = Simulator::new(RadioConfig::default(), 7);
        for &(x, y) in &positions {
            sim.add_node(Pos::new(x, y), MobilityConfig::frozen(), Probe::default(), 3);
        }
        sim.schedule_app_timer(src, SimTime::ZERO, dst as u64);
        sim.run_to_completion();

        let reachable = connected(&positions, 250.0, src, dst);
        if reachable {
            prop_assert_eq!(
                &sim.app(dst).received, &vec![7u64],
                "connected pair {}→{} must deliver", src, dst
            );
            prop_assert!(sim.app(src).failed.is_empty());
        } else {
            prop_assert!(sim.app(dst).received.is_empty(),
                "unreachable pair {}→{} must not deliver", src, dst);
            prop_assert_eq!(&sim.app(src).failed, &vec![dst],
                "sender must learn about the failure");
        }
    }

    #[test]
    fn repeated_sends_all_deliver_on_connected_chains(
        hops in 1usize..7,
        sends in 1usize..5,
    ) {
        // A guaranteed-connected chain; every send must arrive exactly once.
        let mut sim: Simulator<u64, Probe> = Simulator::new(RadioConfig::default(), 9);
        for i in 0..=hops {
            sim.add_node(
                Pos::new(i as f64 * 200.0, 0.0),
                MobilityConfig::frozen(),
                Probe::default(),
                5,
            );
        }
        for k in 0..sends {
            sim.schedule_app_timer(0, SimTime::from_secs_f64(k as f64), hops as u64);
        }
        sim.run_to_completion();
        prop_assert_eq!(sim.app(hops).received.len(), sends);
        prop_assert!(sim.app(0).failed.is_empty());
    }
}

/// The BF query pattern distilled: node 0 floods a broadcast; every
/// receiver relays it once and unicasts a reply back to node 0. With
/// `prime` on, relays install the flood's reverse path into AODV
/// (`NodeCtx::prime_route`), exactly like the dist runtime does.
struct FloodReply {
    prime: bool,
    seen_flood: bool,
    /// Repliers whose unicast reached the originator (node 0 only).
    replies: Vec<NodeId>,
    failed: Vec<NodeId>,
}

impl FloodReply {
    fn new(prime: bool) -> Self {
        FloodReply { prime, seen_flood: false, replies: Vec::new(), failed: Vec::new() }
    }
}

const REPLY_BIT: u64 = 1 << 63;

impl Application<u64> for FloodReply {
    fn on_message(&mut self, ctx: &mut NodeCtx<u64>, meta: MsgMeta, payload: u64) {
        if meta.broadcast {
            let hops = payload as u32;
            if self.seen_flood {
                return;
            }
            self.seen_flood = true;
            if self.prime {
                ctx.prime_route(0, meta.link_from, hops + 1);
            }
            if ctx.id != 0 {
                ctx.broadcast(u64::from(hops + 1), 64);
                ctx.send_unicast(0, REPLY_BIT | ctx.id as u64, 32);
            }
        } else {
            self.replies.push((payload & !REPLY_BIT) as NodeId);
        }
    }
    fn on_timer(&mut self, ctx: &mut NodeCtx<u64>, _token: u64) {
        self.seen_flood = true;
        ctx.broadcast(0, 64);
    }
    fn on_delivery_failed(&mut self, _ctx: &mut NodeCtx<u64>, dst: NodeId, _payload: u64) {
        self.failed.push(dst);
    }
}

fn run_flood(
    positions: &[(f64, f64)],
    prime: bool,
    crashes: &[(NodeId, SimTime)],
) -> (Vec<NodeId>, Vec<NodeId>, u64) {
    let mut sim: Simulator<u64, FloodReply> = Simulator::new(RadioConfig::default(), 11);
    for &(x, y) in positions {
        sim.add_node(Pos::new(x, y), MobilityConfig::frozen(), FloodReply::new(prime), 3);
    }
    let mut plan = FaultPlan::new();
    for &(node, at) in crashes {
        plan = plan.crash_at(node, at);
    }
    sim.install_fault_plan(&plan);
    sim.schedule_app_timer(0, SimTime::ZERO, 0);
    sim.run_to_completion();
    let mut replies = sim.app(0).replies.clone();
    replies.sort_unstable();
    (replies, sim.app(0).failed.clone(), sim.stats().aodv_frames)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// On a static topology the primed reverse tree is exactly the oracle's
    /// connected component: every reachable node's reply arrives over
    /// cached routes with ZERO AODV control frames, no node outside the
    /// component sneaks in, and turning priming off pays at least one
    /// discovery flood per replier for the same outcome.
    #[test]
    fn primed_reply_paths_match_connectivity_oracle(
        raw in prop::collection::vec((0.0f64..1000.0, 0.0f64..400.0), 3..14),
    ) {
        let positions: Vec<(f64, f64)> = raw;
        let component: Vec<NodeId> = (1..positions.len())
            .filter(|&i| connected(&positions, 250.0, 0, i))
            .collect();

        let (primed, failed_p, aodv_primed) = run_flood(&positions, true, &[]);
        prop_assert_eq!(
            &primed, &component,
            "primed replies must be exactly the oracle's component"
        );
        prop_assert!(failed_p.is_empty(), "cached routes must never fail on a static net");
        prop_assert_eq!(
            aodv_primed, 0,
            "warm reverse routes must make RREQ discovery unnecessary"
        );

        let (unprimed, failed_u, aodv_unprimed) = run_flood(&positions, false, &[]);
        prop_assert_eq!(&unprimed, &component);
        prop_assert!(failed_u.is_empty());
        if !component.is_empty() {
            prop_assert!(
                aodv_unprimed as usize >= component.len(),
                "without priming every replier floods at least one RREQ \
                 ({} aodv frames for {} repliers)",
                aodv_unprimed, component.len()
            );
        }
    }

    /// Under churn (relays crashing mid-exchange) priming must stay safe:
    /// no reply is accepted from outside the oracle's component, nothing
    /// panics, and every loss is visible as a failure callback, a counted
    /// forward-drop, or an in-flight frame to a dead node — never a
    /// phantom delivery.
    #[test]
    fn primed_reply_paths_stay_sound_under_churn(
        raw in prop::collection::vec((0.0f64..900.0, 0.0f64..300.0), 4..12),
        crash_sel in any::<prop::sample::Index>(),
        crash_us in 100u64..5_000,
    ) {
        let positions: Vec<(f64, f64)> = raw;
        let n = positions.len();
        // Crash one non-originator node somewhere inside the exchange.
        let victim = 1 + crash_sel.index(n - 1);
        let crashes = [(victim, SimTime(crash_us))];
        let component: Vec<NodeId> = (1..n)
            .filter(|&i| connected(&positions, 250.0, 0, i))
            .collect();

        let (primed, _failed, _aodv) = run_flood(&positions, true, &crashes);
        for r in &primed {
            prop_assert!(
                component.contains(r),
                "reply from {r} accepted but the oracle calls it unreachable"
            );
        }
        // The crashed node's reply may or may not have made it out in
        // time; every *other* component member is still only reachable
        // through live physics, so duplicates are impossible.
        let mut dedup = primed.clone();
        dedup.dedup();
        prop_assert_eq!(dedup, primed, "each replier delivers at most once");
    }
}
