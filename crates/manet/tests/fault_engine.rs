//! Engine-level fault injection: crashes kill volatile state and silence
//! the radio, revives restore service, severed links block frames, and
//! degraded radios lose them — all deterministically.

use manet_sim::engine::{Application, MsgMeta, NodeCtx, Simulator};
use manet_sim::fault::{ChurnConfig, FaultPlan};
use manet_sim::mobility::{MobilityConfig, Pos};
use manet_sim::radio::RadioConfig;
use manet_sim::time::{SimDuration, SimTime};
use manet_sim::NodeId;

/// Test app: records deliveries, timer firings, and crash/revive hooks;
/// timer token = destination id + 1 (token 0 = broadcast).
#[derive(Default)]
struct Chaos {
    received: Vec<(NodeId, u64)>,
    failed: Vec<NodeId>,
    timer_fired: u64,
    crashes: u64,
    revives: u64,
}

impl Application<u64> for Chaos {
    fn on_message(&mut self, _ctx: &mut NodeCtx<u64>, meta: MsgMeta, payload: u64) {
        self.received.push((meta.src, payload));
    }
    fn on_timer(&mut self, ctx: &mut NodeCtx<u64>, token: u64) {
        self.timer_fired += 1;
        if token == 0 {
            ctx.broadcast(7, 16);
        } else if token != u64::MAX {
            ctx.send_unicast((token - 1) as NodeId, 99, 64);
        }
    }
    fn on_delivery_failed(&mut self, _ctx: &mut NodeCtx<u64>, dst: NodeId, _payload: u64) {
        self.failed.push(dst);
    }
    fn on_crash(&mut self) {
        self.crashes += 1;
    }
    fn on_revive(&mut self, _ctx: &mut NodeCtx<u64>) {
        self.revives += 1;
    }
}

fn chain(n: usize, spacing: f64) -> Simulator<u64, Chaos> {
    let mut sim = Simulator::new(RadioConfig::default(), 42);
    for i in 0..n {
        sim.add_node(
            Pos::new(i as f64 * spacing, 0.0),
            MobilityConfig::frozen(),
            Chaos::default(),
            9,
        );
    }
    sim
}

fn secs(s: f64) -> SimTime {
    SimTime::from_secs_f64(s)
}

#[test]
fn crashed_node_receives_nothing_and_hooks_fire() {
    let mut sim = chain(2, 100.0);
    sim.install_fault_plan(&FaultPlan::new().crash_at(1, secs(1.0)));
    sim.schedule_app_timer(0, secs(2.0), 2); // 0 → 1 after the crash
    sim.run_to_completion();
    assert!(sim.app(1).received.is_empty(), "dead node must not deliver up");
    assert_eq!(sim.app(1).crashes, 1);
    assert!(!sim.is_up(1));
    assert!(sim.stats().node_crashes == 1 && sim.stats().frames_dropped_node_down > 0);
}

#[test]
fn revived_node_serves_again() {
    let mut sim = chain(2, 100.0);
    sim.install_fault_plan(&FaultPlan::new().crash_for(
        1,
        secs(1.0),
        SimDuration::from_secs_f64(4.0),
    ));
    sim.schedule_app_timer(0, secs(10.0), 2);
    sim.run_to_completion();
    assert_eq!(sim.app(1).received, vec![(0, 99)]);
    assert_eq!(sim.app(1).crashes, 1);
    assert_eq!(sim.app(1).revives, 1);
    assert!(sim.is_up(1));
    assert_eq!(sim.stats().node_revivals, 1);
}

#[test]
fn crash_invalidates_pending_timers() {
    let mut sim = chain(2, 100.0);
    // Timer armed before the crash for after the revive: the epoch bump
    // must drop it even though the node is up again when it fires.
    sim.schedule_app_timer(1, secs(10.0), u64::MAX);
    sim.install_fault_plan(&FaultPlan::new().crash_for(
        1,
        secs(1.0),
        SimDuration::from_secs_f64(2.0),
    ));
    sim.run_to_completion();
    assert_eq!(sim.app(1).timer_fired, 0, "stale-epoch timer must not fire");
    // A timer armed after the revive (current epoch) does fire.
    sim.schedule_app_timer(1, sim.now() + SimDuration::from_secs_f64(1.0), u64::MAX);
    sim.run_to_completion();
    assert_eq!(sim.app(1).timer_fired, 1);
}

#[test]
fn severed_link_blocks_frames_until_restored() {
    let mut sim = chain(2, 100.0);
    sim.install_fault_plan(&FaultPlan::new().sever_link(0, 1, secs(0.5), secs(20.0)));
    sim.schedule_app_timer(0, secs(1.0), 2); // during the window: fails
    sim.schedule_app_timer(0, secs(30.0), 2); // after restore: delivered
    sim.run_to_completion();
    assert_eq!(sim.app(0).failed, vec![1], "discovery across a severed link must fail");
    assert_eq!(sim.app(1).received, vec![(0, 99)]);
    assert!(sim.stats().frames_blocked_link_down > 0);
}

#[test]
fn degraded_radio_loses_every_frame_at_full_loss() {
    let mut sim = chain(2, 100.0);
    sim.install_fault_plan(&FaultPlan::new().degrade_radio(1.0, secs(0.5), secs(20.0)));
    sim.schedule_app_timer(0, secs(1.0), 2);
    sim.schedule_app_timer(0, secs(30.0), 2);
    sim.run_to_completion();
    assert_eq!(sim.app(0).failed, vec![1], "total loss window must fail delivery");
    assert_eq!(sim.app(1).received, vec![(0, 99)], "after restore frames flow again");
}

#[test]
fn routing_detects_crashed_relay_and_recovers_via_detour() {
    // Square: 0 and 3 are opposite corners, reachable via 1 or 2.
    let mut sim: Simulator<u64, Chaos> = Simulator::new(RadioConfig::default(), 7);
    for (x, y) in [(0.0, 0.0), (200.0, 0.0), (0.0, 200.0), (200.0, 200.0)] {
        sim.add_node(Pos::new(x, y), MobilityConfig::frozen(), Chaos::default(), 9);
    }
    // Warm a route 0 → 3, then crash whichever relay it used? Both relays
    // are equivalent; crash node 1 and send afterwards — AODV must find
    // the detour via 2 because the oracle no longer lists 1.
    sim.install_fault_plan(&FaultPlan::new().crash_at(1, secs(5.0)));
    sim.schedule_app_timer(0, secs(1.0), 4);
    sim.schedule_app_timer(0, secs(10.0), 4);
    sim.run_to_completion();
    assert_eq!(sim.app(3).received, vec![(0, 99), (0, 99)]);
    assert!(sim.app(0).failed.is_empty());
}

#[test]
fn beaconing_resumes_after_revive() {
    let mut sim = chain(2, 100.0);
    sim.set_neighbor_mode(manet_sim::NeighborMode::Beacon {
        period: SimDuration::from_secs_f64(1.0),
        expiry: SimDuration::from_secs_f64(3.0),
    });
    sim.install_fault_plan(&FaultPlan::new().crash_for(
        1,
        secs(2.0),
        SimDuration::from_secs_f64(5.0),
    ));
    // After revive + one beacon period, 0 hears 1 again and can deliver.
    sim.schedule_app_timer(0, secs(15.0), 2);
    // Keep the clock moving so beacons keep firing.
    sim.schedule_app_timer(0, secs(20.0), u64::MAX);
    sim.run_until(secs(20.0));
    assert_eq!(sim.app(1).received, vec![(0, 99)]);
    assert!(sim.stats().hello_frames > 0);
}

#[test]
fn fault_runs_are_deterministic() {
    let run = || {
        let mut sim = chain(5, 200.0);
        let plan = FaultPlan::random_churn(&ChurnConfig {
            nodes: 5,
            churn_fraction: 0.4,
            earliest: secs(1.0),
            latest: secs(20.0),
            min_downtime: SimDuration::from_secs_f64(2.0),
            max_downtime: SimDuration::from_secs_f64(10.0),
            protect: vec![0],
            seed: 13,
        });
        sim.install_fault_plan(&plan);
        for k in 0..10 {
            sim.schedule_app_timer(0, secs(2.0 + 3.0 * f64::from(k)), 5);
        }
        sim.run_to_completion();
        (*sim.stats(), sim.app(4).received.len())
    };
    assert_eq!(run(), run());
}

#[test]
#[should_panic(expected = "unknown node")]
fn plan_naming_missing_node_is_rejected() {
    let mut sim = chain(2, 100.0);
    sim.install_fault_plan(&FaultPlan::new().crash_at(9, secs(1.0)));
}
