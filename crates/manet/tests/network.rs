//! End-to-end tests of the simulator: routing over chains and grids,
//! broadcast scope, mobility-induced failures, and determinism.

use manet_sim::engine::{Application, MsgMeta, NodeCtx, Simulator};
use manet_sim::mobility::{MobilityConfig, Pos};
use manet_sim::radio::RadioConfig;
use manet_sim::time::{SimDuration, SimTime};
use manet_sim::NodeId;

/// Test app: records everything it receives; supports scripted sends via
/// timer tokens (token = destination id + 1; token 0 = broadcast).
#[derive(Default)]
struct Recorder {
    received: Vec<(NodeId, u64, bool)>, // (src, payload, broadcast)
    failed: Vec<(NodeId, u64)>,
    received_at: Vec<SimTime>,
}

impl Application<u64> for Recorder {
    fn on_message(&mut self, ctx: &mut NodeCtx<u64>, meta: MsgMeta, payload: u64) {
        self.received.push((meta.src, payload, meta.broadcast));
        self.received_at.push(ctx.now);
    }
    fn on_timer(&mut self, ctx: &mut NodeCtx<u64>, token: u64) {
        if token == u64::MAX {
            // No-op tick: used by tests to advance the clock.
        } else if token == 0 {
            ctx.broadcast(7, 16);
        } else {
            ctx.send_unicast((token - 1) as NodeId, 99, 64);
        }
    }
    fn on_delivery_failed(&mut self, _ctx: &mut NodeCtx<u64>, dst: NodeId, payload: u64) {
        self.failed.push((dst, payload));
    }
}

fn chain(n: usize, spacing: f64) -> Simulator<u64, Recorder> {
    let mut sim = Simulator::new(RadioConfig::default(), 42);
    for i in 0..n {
        sim.add_node(
            Pos::new(i as f64 * spacing, 0.0),
            MobilityConfig::frozen(),
            Recorder::default(),
            9,
        );
    }
    sim
}

#[test]
fn unicast_across_long_chain() {
    // 8 nodes, 200 m apart; only consecutive nodes are in range (250 m).
    let mut sim = chain(8, 200.0);
    sim.schedule_app_timer(0, SimTime::ZERO, 8); // send to node 7
    sim.run_to_completion();
    assert_eq!(sim.app(7).received, vec![(0, 99, false)]);
    // Intermediates forwarded but did not deliver up.
    for i in 1..7 {
        assert!(sim.app(i).received.is_empty());
    }
    let s = sim.stats();
    assert_eq!(s.app_unicasts_delivered, 1);
    assert!(s.aodv_frames > 0, "route discovery must have run");
    assert!(s.data_frames >= 7, "seven hops of data forwarding");
}

#[test]
fn broadcast_reaches_only_one_hop_neighbors() {
    let mut sim = chain(5, 200.0);
    sim.schedule_app_timer(2, SimTime::ZERO, 0); // node 2 broadcasts
    sim.run_to_completion();
    for i in [1, 3] {
        assert_eq!(sim.app(i).received, vec![(2, 7, true)], "neighbor {i}");
    }
    for i in [0, 4] {
        assert!(sim.app(i).received.is_empty(), "two hops away {i}");
    }
}

#[test]
fn unreachable_destination_reports_failure() {
    let mut sim = chain(2, 200.0);
    // Node far outside anyone's range.
    sim.add_node(Pos::new(10_000.0, 0.0), MobilityConfig::frozen(), Recorder::default(), 9);
    sim.schedule_app_timer(0, SimTime::ZERO, 3); // send to the island node
    sim.run_to_completion();
    assert_eq!(sim.app(0).failed, vec![(2, 99)]);
    assert!(sim.app(2).received.is_empty());
    assert_eq!(sim.stats().app_unicasts_failed, 1);
}

#[test]
fn second_message_reuses_cached_route() {
    let mut sim = chain(4, 200.0);
    sim.schedule_app_timer(0, SimTime::ZERO, 4);
    // Well within the 3 s active-route timeout.
    sim.schedule_app_timer(0, SimTime::from_secs_f64(1.0), 4);
    sim.run_to_completion();
    assert_eq!(sim.app(3).received.len(), 2);
    let s = *sim.stats();

    // Compare against two cold sends: the warm pair must use fewer AODV
    // frames than two discoveries would.
    let mut cold = chain(4, 200.0);
    cold.schedule_app_timer(0, SimTime::ZERO, 4);
    cold.schedule_app_timer(0, SimTime::from_secs_f64(100.0), 4); // expired
    cold.run_to_completion();
    assert!(s.aodv_frames < cold.stats().aodv_frames);
}

#[test]
fn delivery_latency_reflects_size_and_hops() {
    let mut sim = chain(3, 200.0);
    sim.schedule_app_timer(0, SimTime::ZERO, 3);
    sim.run_to_completion();
    let t = sim.app(2).received_at[0];
    // Two hops with ~2 ms latency each plus discovery: at least 4 ms,
    // and with an idle network well under a second.
    assert!(t >= SimTime::from_secs_f64(0.004), "{t}");
    assert!(t <= SimTime::from_secs_f64(1.0), "{t}");
}

#[test]
fn runs_are_deterministic() {
    let run = || {
        let mut sim = chain(6, 200.0);
        sim.schedule_app_timer(0, SimTime::ZERO, 6);
        sim.schedule_app_timer(5, SimTime::from_secs_f64(0.5), 1);
        sim.run_to_completion();
        (*sim.stats(), sim.app(5).received_at.clone())
    };
    assert_eq!(run().0, run().0);
    assert_eq!(run().1, run().1);
}

#[test]
fn grid_any_to_any_connectivity() {
    // 4×4 grid, 220 m spacing: connected via the grid edges.
    let mut sim = Simulator::new(RadioConfig::default(), 3);
    for r in 0..4 {
        for c in 0..4 {
            sim.add_node(
                Pos::new(c as f64 * 220.0, r as f64 * 220.0),
                MobilityConfig::frozen(),
                Recorder::default(),
                5,
            );
        }
    }
    sim.schedule_app_timer(0, SimTime::ZERO, 16); // corner to corner
    sim.run_to_completion();
    assert_eq!(sim.app(15).received, vec![(0, 99, false)]);
}

#[test]
fn mobility_changes_topology_over_time() {
    // Two nodes that start in range; with mobility they will (very likely)
    // drift out of range at some point within 2 h — verified via positions.
    let cfg = MobilityConfig { pause: SimDuration::from_secs_f64(5.0), ..MobilityConfig::paper() };
    let mut sim: Simulator<u64, Recorder> = Simulator::new(RadioConfig::default(), 11);
    sim.add_node(Pos::new(400.0, 500.0), cfg, Recorder::default(), 21);
    sim.add_node(Pos::new(600.0, 500.0), cfg, Recorder::default(), 22);
    // Drive the clock with no-op ticks and sample the distance.
    for k in 0..720 {
        sim.schedule_app_timer(0, SimTime::from_secs_f64(k as f64 * 10.0), u64::MAX);
    }
    let mut apart = false;
    for k in 0..720 {
        let t = SimTime::from_secs_f64(k as f64 * 10.0);
        sim.run_until(t);
        let a = sim.position(0);
        let b = sim.position(1);
        if a.dist(b) > 250.0 {
            apart = true;
            break;
        }
    }
    assert!(apart, "random waypoint never separated the nodes in 2 h");
}

#[test]
fn stats_track_bytes_and_frames() {
    let mut sim = chain(2, 100.0);
    sim.schedule_app_timer(0, SimTime::ZERO, 2);
    sim.run_to_completion();
    let s = sim.stats();
    assert!(s.bytes_sent > 0);
    assert_eq!(s.frames_sent, s.aodv_frames + s.data_frames + s.bcast_frames + s.hello_frames);
}

#[test]
fn energy_is_charged_to_senders_and_receivers() {
    let mut sim = chain(3, 200.0);
    assert_eq!(sim.total_energy_joules(), 0.0);
    sim.schedule_app_timer(0, SimTime::ZERO, 3); // 0 → 2 via 1
    sim.run_to_completion();
    // Everyone participated: 0 sent RREQ+data, 1 relayed, 2 replied RREP.
    for n in 0..3 {
        assert!(sim.energy_joules(n) > 0.0, "node {n} consumed no energy");
    }
    // The relay both receives and transmits the data frame: its share is
    // substantial.
    assert!(sim.total_energy_joules() > sim.energy_joules(2));
}

#[test]
fn transmissions_cost_more_than_receptions() {
    // One broadcast: sender pays tx once, both neighbours pay rx.
    let mut sim = chain(3, 200.0);
    sim.schedule_app_timer(1, SimTime::ZERO, 0); // node 1 broadcasts
    sim.run_to_completion();
    let tx = sim.energy_joules(1);
    let rx = sim.energy_joules(0);
    assert!(tx > rx, "tx ({tx}) must exceed rx ({rx}) for equal frames");
    assert_eq!(sim.energy_joules(0), sim.energy_joules(2));
}

#[test]
fn event_trace_captures_radio_activity() {
    let mut sim = chain(3, 200.0);
    sim.enable_trace(256);
    sim.schedule_app_timer(0, SimTime::ZERO, 3);
    sim.run_to_completion();
    let trace = sim.trace().expect("enabled");
    assert!(!trace.is_empty());
    use manet_sim::trace::TraceEvent;
    let sends = trace
        .entries()
        .filter(|(_, e)| matches!(e, TraceEvent::FrameSent { .. }))
        .count();
    let delivers = trace
        .entries()
        .filter(|(_, e)| matches!(e, TraceEvent::FrameDelivered { .. }))
        .count();
    assert!(sends > 0 && delivers > 0);
    // The dump is line-per-event and mentions both directions.
    let dump = trace.dump();
    assert!(dump.contains("FrameSent"));
    assert!(dump.contains("FrameDelivered"));
}

#[test]
fn app_state_is_inspectable_and_injectable() {
    let mut sim = chain(2, 100.0);
    // Inject state directly (test-only API) and observe it after a run.
    sim.app_mut(0).received.push((9, 123, false));
    sim.schedule_app_timer(0, SimTime::ZERO, 2);
    sim.run_to_completion();
    assert_eq!(sim.app(0).received[0], (9, 123, false));
    assert_eq!(sim.app(1).received.len(), 1);
    assert_eq!(sim.num_nodes(), 2);
    assert!(sim.now() > SimTime::ZERO);
}
