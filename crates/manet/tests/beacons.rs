//! Tests of beacon-based neighbour discovery (`NeighborMode::Beacon`):
//! tables populate from HELLO frames, lag mobility, expire, and the whole
//! stack still routes end-to-end on top of them.

use manet_sim::engine::{Application, MsgMeta, NeighborMode, NodeCtx, Simulator};
use manet_sim::mobility::{MobilityConfig, Pos};
use manet_sim::radio::RadioConfig;
use manet_sim::time::{SimDuration, SimTime};
use manet_sim::NodeId;

#[derive(Default)]
struct Peek {
    received: Vec<u64>,
    neighbor_snapshots: Vec<Vec<NodeId>>,
}

impl Application<u64> for Peek {
    fn on_message(&mut self, _ctx: &mut NodeCtx<u64>, _meta: MsgMeta, payload: u64) {
        self.received.push(payload);
    }
    fn on_timer(&mut self, ctx: &mut NodeCtx<u64>, token: u64) {
        match token {
            0 => self.neighbor_snapshots.push(ctx.neighbors().to_vec()),
            dst => ctx.send_unicast((dst - 1) as NodeId, 5, 16),
        }
    }
}

fn beacon_sim(positions: &[(f64, f64)]) -> Simulator<u64, Peek> {
    let mut sim = Simulator::new(RadioConfig::default(), 11);
    sim.set_neighbor_mode(NeighborMode::Beacon {
        period: SimDuration::from_secs_f64(1.0),
        expiry: SimDuration::from_secs_f64(3.0),
    });
    for &(x, y) in positions {
        sim.add_node(Pos::new(x, y), MobilityConfig::frozen(), Peek::default(), 3);
    }
    sim
}

#[test]
fn tables_start_empty_then_fill() {
    let mut sim = beacon_sim(&[(0.0, 0.0), (200.0, 0.0), (400.0, 0.0)]);
    // Snapshot neighbours of node 1 before any beacon and after one period.
    sim.schedule_app_timer(1, SimTime::from_secs_f64(0.01), 0);
    sim.schedule_app_timer(1, SimTime::from_secs_f64(2.0), 0);
    sim.run_until(SimTime::from_secs_f64(5.0));
    let snaps = &sim.app(1).neighbor_snapshots;
    assert_eq!(snaps.len(), 2);
    assert!(
        snaps[0].len() < 2,
        "before beaconing finishes the table is incomplete: {:?}",
        snaps[0]
    );
    assert_eq!(snaps[1], vec![0, 2], "after a period both neighbours are known");
    assert!(sim.stats().hello_frames > 0);
}

#[test]
fn routing_works_over_beacon_neighbors() {
    let mut sim = beacon_sim(&[(0.0, 0.0), (200.0, 0.0), (400.0, 0.0), (600.0, 0.0)]);
    // Send after the tables have settled.
    sim.schedule_app_timer(0, SimTime::from_secs_f64(3.0), 4); // to node 3
    sim.run_until(SimTime::from_secs_f64(30.0));
    assert_eq!(sim.app(3).received, vec![5]);
}

#[test]
fn entries_expire_when_a_node_departs() {
    // Node 1 moves away fast; node 0 is frozen. After node 1 leaves range,
    // node 0's table must eventually empty.
    let mut sim: Simulator<u64, Peek> = Simulator::new(RadioConfig::default(), 5);
    sim.set_neighbor_mode(NeighborMode::Beacon {
        period: SimDuration::from_secs_f64(1.0),
        expiry: SimDuration::from_secs_f64(2.5),
    });
    sim.add_node(Pos::new(0.0, 0.0), MobilityConfig::frozen(), Peek::default(), 1);
    // A "mover" that sprints right at 10 m/s without pausing.
    let sprint = MobilityConfig {
        width: 100_000.0,
        height: 1.0,
        speed_min: 10.0,
        speed_max: 10.0,
        pause: SimDuration::ZERO,
        frozen: false,
    };
    sim.add_node(Pos::new(100.0, 0.0), sprint, Peek::default(), 2);
    // Snapshot node 0's neighbours periodically.
    for k in 1..60 {
        sim.schedule_app_timer(0, SimTime::from_secs_f64(k as f64 * 5.0), 0);
    }
    sim.run_until(SimTime::from_secs_f64(300.0));
    let snaps = &sim.app(0).neighbor_snapshots;
    assert!(snaps.iter().any(|s| s.contains(&1)), "initially heard");
    assert!(
        snaps.last().expect("snapshots taken").is_empty(),
        "departed neighbour must expire: {:?}",
        snaps.last()
    );
}

#[test]
fn beacons_consume_energy_and_frames() {
    let mut sim = beacon_sim(&[(0.0, 0.0), (100.0, 0.0)]);
    sim.schedule_app_timer(0, SimTime::from_secs_f64(20.0), 0); // keep clock alive
    sim.run_until(SimTime::from_secs_f64(20.0));
    let s = sim.stats();
    // ~20 beacons per node over 20 s at 1 Hz.
    assert!(s.hello_frames >= 30, "{} hello frames", s.hello_frames);
    assert!(sim.total_energy_joules() > 0.0);
}
