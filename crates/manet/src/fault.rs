//! Deterministic fault plans: scripted or seeded-random node churn, link
//! severing, and radio degradation, injected into the event engine.
//!
//! A [`FaultPlan`] is a sorted list of timestamped [`FaultAction`]s. The
//! engine schedules them as ordinary events
//! ([`Simulator::install_fault_plan`](crate::engine::Simulator::install_fault_plan)),
//! so fault timing participates in the same FIFO tie-breaking that makes
//! runs reproducible: the same plan on the same seed yields bit-identical
//! traces.
//!
//! Crash semantics (see DESIGN.md §7): a crashed node stops transmitting
//! and receiving, its pending application/AODV timers are invalidated (an
//! epoch counter guards against stale firings), its AODV tables and
//! beacon-heard map are cleared, and the application's
//! [`on_crash`](crate::engine::Application::on_crash) hook runs so it can
//! drop volatile query bookkeeping. Durable state — the application object
//! itself, i.e. the device's storage partition — survives; on revive the
//! application's [`on_revive`](crate::engine::Application::on_revive) hook
//! re-arms whatever timers it needs.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::packet::NodeId;
use crate::time::{SimDuration, SimTime};

/// One fault to inject at a scheduled time.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FaultAction {
    /// Node goes down, losing volatile state (timers, routes, in-flight
    /// query bookkeeping). Its storage partition survives.
    Crash(NodeId),
    /// Node comes back up with empty routing tables and fresh timers.
    Revive(NodeId),
    /// The (bidirectional) link between two nodes stops carrying frames.
    SeverLink(NodeId, NodeId),
    /// The severed link carries frames again.
    RestoreLink(NodeId, NodeId),
    /// Every frame additionally faces this independent loss probability
    /// (on top of the radio's own loss model) until restored.
    DegradeRadio {
        /// Extra per-frame loss probability in `[0, 1]`.
        extra_loss: f64,
    },
    /// Ends a [`FaultAction::DegradeRadio`] window.
    RestoreRadio,
}

/// A [`FaultAction`] with its injection time.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultEvent {
    /// When the action fires.
    pub at: SimTime,
    /// What happens.
    pub action: FaultAction,
}

/// Parameters for [`FaultPlan::random_churn`]: seeded-random crash/reboot
/// cycles over a node population.
#[derive(Debug, Clone)]
pub struct ChurnConfig {
    /// Population size; node ids `0..nodes` are candidates.
    pub nodes: usize,
    /// Fraction of candidate nodes that crash once (rounded to nearest).
    pub churn_fraction: f64,
    /// Earliest crash time.
    pub earliest: SimTime,
    /// Latest crash time.
    pub latest: SimTime,
    /// Shortest downtime before the reboot.
    pub min_downtime: SimDuration,
    /// Longest downtime before the reboot.
    pub max_downtime: SimDuration,
    /// Nodes that never crash (e.g. a designated sink).
    pub protect: Vec<NodeId>,
    /// Seed for the plan's own RNG (independent of the engine seed).
    pub seed: u64,
}

/// A deterministic schedule of faults, replayable across runs.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultPlan {
    events: Vec<FaultEvent>,
}

impl FaultPlan {
    /// An empty plan.
    pub fn new() -> Self {
        Self::default()
    }

    /// The scheduled events, sorted by time (stable for ties).
    pub fn events(&self) -> &[FaultEvent] {
        &self.events
    }

    /// Number of scheduled events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// `true` when nothing is scheduled.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    fn push(&mut self, at: SimTime, action: FaultAction) {
        self.events.push(FaultEvent { at, action });
        // Insertion order breaks ties, mirroring the event queue's FIFO rule.
        self.events.sort_by_key(|e| e.at);
    }

    /// Crashes `node` at `at` (no scheduled reboot).
    pub fn crash_at(mut self, node: NodeId, at: SimTime) -> Self {
        self.push(at, FaultAction::Crash(node));
        self
    }

    /// Revives `node` at `at`.
    pub fn revive_at(mut self, node: NodeId, at: SimTime) -> Self {
        self.push(at, FaultAction::Revive(node));
        self
    }

    /// Crashes `node` at `at` and reboots it `downtime` later.
    pub fn crash_for(self, node: NodeId, at: SimTime, downtime: SimDuration) -> Self {
        self.crash_at(node, at).revive_at(node, at + downtime)
    }

    /// Severs the `a`–`b` link during `[from, until)`.
    pub fn sever_link(mut self, a: NodeId, b: NodeId, from: SimTime, until: SimTime) -> Self {
        assert!(until > from, "sever window must be non-empty");
        self.push(from, FaultAction::SeverLink(a, b));
        self.push(until, FaultAction::RestoreLink(a, b));
        self
    }

    /// Adds `extra_loss` frame loss during `[from, until)`.
    pub fn degrade_radio(mut self, extra_loss: f64, from: SimTime, until: SimTime) -> Self {
        assert!((0.0..=1.0).contains(&extra_loss), "extra_loss must be a probability");
        assert!(until > from, "degrade window must be non-empty");
        self.push(from, FaultAction::DegradeRadio { extra_loss });
        self.push(until, FaultAction::RestoreRadio);
        self
    }

    /// Generates crash/reboot cycles for a random subset of nodes, fully
    /// determined by `cfg.seed`: the same config always yields the same
    /// plan.
    ///
    /// # Panics
    /// Panics when the crash window is empty or the downtime range is
    /// inverted.
    pub fn random_churn(cfg: &ChurnConfig) -> Self {
        assert!(cfg.latest > cfg.earliest, "crash window must be non-empty");
        assert!(cfg.max_downtime >= cfg.min_downtime, "downtime range inverted");
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let mut candidates: Vec<NodeId> =
            (0..cfg.nodes).filter(|n| !cfg.protect.contains(n)).collect();
        let victims = ((candidates.len() as f64) * cfg.churn_fraction).round() as usize;
        let victims = victims.min(candidates.len());
        // Partial Fisher–Yates: the first `victims` slots are the sample.
        for i in 0..victims {
            let j = rng.random_range(i..candidates.len());
            candidates.swap(i, j);
        }
        let mut plan = FaultPlan::new();
        let window = cfg.latest.0 - cfg.earliest.0;
        let spread = cfg.max_downtime.0 - cfg.min_downtime.0;
        for &node in &candidates[..victims] {
            let at = SimTime(cfg.earliest.0 + rng.random_range(0..window.max(1)));
            let down = SimDuration(
                cfg.min_downtime.0 + if spread == 0 { 0 } else { rng.random_range(0..spread) },
            );
            plan = plan.crash_for(node, at, down);
        }
        plan
    }
}

/// Adversarial behaviours a node can be assigned (DESIGN.md §11).
///
/// Roles change what the *application* does while the node is otherwise a
/// normal participant: an attacker still owns its storage partition, still
/// crashes and revives under the fault plan, and still routes frames.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AttackKind {
    /// Issues fake queries at a configured rate, dragging every honest
    /// node through flood relay + reply + route discovery for nothing.
    QueryFlood,
    /// Answers other nodes' queries with a fabricated filter tuple that
    /// falsely dominates the whole data domain (suppressing true skyline
    /// tuples downstream) and a fabricated result tuple that poisons the
    /// merged answer.
    FilterPoison,
    /// Answers each query several times under fabricated identities,
    /// inflating the originator's responder count so it finalizes before
    /// honest stragglers arrive.
    Sybil,
}

impl AttackKind {
    /// Stable lowercase name used in traces and bench tables.
    pub fn name(self) -> &'static str {
        match self {
            AttackKind::QueryFlood => "query_flood",
            AttackKind::FilterPoison => "filter_poison",
            AttackKind::Sybil => "sybil",
        }
    }
}

/// One node's adversarial assignment with its active window.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AttackRole {
    /// The compromised node.
    pub node: NodeId,
    /// What it does.
    pub kind: AttackKind,
    /// Start of the active window (inclusive).
    pub from: SimTime,
    /// End of the active window (exclusive).
    pub until: SimTime,
    /// [`AttackKind::QueryFlood`]: seconds between fake queries.
    /// Ignored by the other kinds.
    pub period: SimDuration,
    /// [`AttackKind::Sybil`]: forged identities per answered query.
    /// Ignored by the other kinds.
    pub sybil_k: usize,
    /// [`AttackKind::QueryFlood`]: when `true`, fake queries claim a
    /// rotating honest neighbor as their originator instead of the
    /// attacker's own id — the origin-spoofed flood of DESIGN §11.5.
    /// Ignored by the other kinds.
    pub spoof: bool,
}

impl AttackRole {
    /// `true` while the role's window covers `now`.
    pub fn active_at(&self, now: SimTime) -> bool {
        now >= self.from && now < self.until
    }
}

/// Parameters for [`AttackPlan::random`]: seeded-random assignment of one
/// attack kind to a fraction of the population, mirroring
/// [`ChurnConfig`] so attack runs replay bit-identically.
#[derive(Debug, Clone)]
pub struct AttackConfig {
    /// Population size; node ids `0..nodes` are candidates.
    pub nodes: usize,
    /// The behaviour every selected attacker gets.
    pub kind: AttackKind,
    /// Fraction of candidate nodes compromised (rounded to nearest).
    pub fraction: f64,
    /// Start of every attacker's active window.
    pub from: SimTime,
    /// End of every attacker's active window.
    pub until: SimTime,
    /// Flood period ([`AttackKind::QueryFlood`] only).
    pub period: SimDuration,
    /// Forged identities per reply ([`AttackKind::Sybil`] only).
    pub sybil_k: usize,
    /// Spoof the claimed originator of fake queries
    /// ([`AttackKind::QueryFlood`] only).
    pub spoof: bool,
    /// Nodes that are never compromised (e.g. the originator under test).
    pub protect: Vec<NodeId>,
    /// Seed for the plan's own RNG (independent of the engine seed).
    pub seed: u64,
}

/// A deterministic set of adversarial role assignments, replayable across
/// runs. Sorted by node id; at most one role per node.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct AttackPlan {
    roles: Vec<AttackRole>,
}

impl AttackPlan {
    /// An empty plan (no attackers).
    pub fn new() -> Self {
        Self::default()
    }

    /// The assigned roles, sorted by node id.
    pub fn roles(&self) -> &[AttackRole] {
        &self.roles
    }

    /// Number of compromised nodes.
    pub fn len(&self) -> usize {
        self.roles.len()
    }

    /// `true` when no node is compromised.
    pub fn is_empty(&self) -> bool {
        self.roles.is_empty()
    }

    /// The role assigned to `node`, if any.
    pub fn role_of(&self, node: NodeId) -> Option<&AttackRole> {
        self.roles.iter().find(|r| r.node == node)
    }

    /// Assigns `role`, replacing any previous assignment for the node.
    ///
    /// # Panics
    /// Panics when the active window is empty.
    pub fn assign(mut self, role: AttackRole) -> Self {
        assert!(role.until > role.from, "attack window must be non-empty");
        self.roles.retain(|r| r.node != role.node);
        self.roles.push(role);
        self.roles.sort_by_key(|r| r.node);
        self
    }

    /// Compromises a random subset of nodes, fully determined by
    /// `cfg.seed`: the same config always yields the same plan (same
    /// partial Fisher–Yates sampling as [`FaultPlan::random_churn`]).
    ///
    /// # Panics
    /// Panics when the active window is empty.
    pub fn random(cfg: &AttackConfig) -> Self {
        assert!(cfg.until > cfg.from, "attack window must be non-empty");
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let mut candidates: Vec<NodeId> =
            (0..cfg.nodes).filter(|n| !cfg.protect.contains(n)).collect();
        let picks = ((candidates.len() as f64) * cfg.fraction).round() as usize;
        let picks = picks.min(candidates.len());
        for i in 0..picks {
            let j = rng.random_range(i..candidates.len());
            candidates.swap(i, j);
        }
        let mut plan = AttackPlan::new();
        for &node in &candidates[..picks] {
            plan = plan.assign(AttackRole {
                node,
                kind: cfg.kind,
                from: cfg.from,
                until: cfg.until,
                period: cfg.period,
                sybil_k: cfg.sybil_k,
                spoof: cfg.spoof,
            });
        }
        plan
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn churn_cfg(seed: u64) -> ChurnConfig {
        ChurnConfig {
            nodes: 20,
            churn_fraction: 0.25,
            earliest: SimTime::from_secs_f64(10.0),
            latest: SimTime::from_secs_f64(100.0),
            min_downtime: SimDuration::from_secs_f64(5.0),
            max_downtime: SimDuration::from_secs_f64(50.0),
            protect: vec![0],
            seed,
        }
    }

    #[test]
    fn builder_keeps_events_sorted() {
        let plan = FaultPlan::new()
            .crash_at(2, SimTime::from_secs_f64(30.0))
            .crash_for(1, SimTime::from_secs_f64(10.0), SimDuration::from_secs_f64(5.0))
            .sever_link(0, 3, SimTime::from_secs_f64(20.0), SimTime::from_secs_f64(25.0));
        let times: Vec<u64> = plan.events().iter().map(|e| e.at.0).collect();
        let mut sorted = times.clone();
        sorted.sort_unstable();
        assert_eq!(times, sorted);
        assert_eq!(plan.len(), 5);
    }

    #[test]
    fn random_churn_is_deterministic() {
        let a = FaultPlan::random_churn(&churn_cfg(7));
        let b = FaultPlan::random_churn(&churn_cfg(7));
        assert_eq!(a, b);
        let c = FaultPlan::random_churn(&churn_cfg(8));
        assert_ne!(a, c, "different seeds should (virtually always) differ");
    }

    #[test]
    fn random_churn_respects_fraction_window_and_protection() {
        let cfg = churn_cfg(3);
        let plan = FaultPlan::random_churn(&cfg);
        // 19 candidates (node 0 protected) × 0.25 → 5 victims → 10 events.
        assert_eq!(plan.len(), 10);
        for e in plan.events() {
            match e.action {
                FaultAction::Crash(n) => {
                    assert_ne!(n, 0, "protected node crashed");
                    assert!(e.at >= cfg.earliest && e.at < cfg.latest);
                }
                FaultAction::Revive(n) => assert_ne!(n, 0),
                other => panic!("churn plans contain only crash/revive, got {other:?}"),
            }
        }
    }

    #[test]
    fn every_crash_has_a_later_revive() {
        let plan = FaultPlan::random_churn(&churn_cfg(11));
        for e in plan.events() {
            if let FaultAction::Crash(n) = e.action {
                let revive = plan
                    .events()
                    .iter()
                    .find(|r| r.action == FaultAction::Revive(n))
                    .expect("revive scheduled");
                assert!(revive.at > e.at, "downtime must be positive");
            }
        }
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_sever_window_rejected() {
        let t = SimTime::from_secs_f64(5.0);
        let _ = FaultPlan::new().sever_link(0, 1, t, t);
    }

    #[test]
    fn zero_fraction_yields_empty_plan() {
        let cfg = ChurnConfig { churn_fraction: 0.0, ..churn_cfg(1) };
        assert!(FaultPlan::random_churn(&cfg).is_empty());
    }

    fn attack_cfg(seed: u64) -> AttackConfig {
        AttackConfig {
            nodes: 16,
            kind: AttackKind::FilterPoison,
            fraction: 0.25,
            from: SimTime::from_secs_f64(5.0),
            until: SimTime::from_secs_f64(500.0),
            period: SimDuration::from_secs_f64(30.0),
            sybil_k: 4,
            spoof: false,
            protect: vec![0],
            seed,
        }
    }

    #[test]
    fn random_attack_plan_is_deterministic() {
        let a = AttackPlan::random(&attack_cfg(7));
        let b = AttackPlan::random(&attack_cfg(7));
        assert_eq!(a, b);
        let c = AttackPlan::random(&attack_cfg(8));
        assert_ne!(a, c, "different seeds should (virtually always) differ");
    }

    #[test]
    fn random_attack_plan_respects_fraction_and_protection() {
        let cfg = attack_cfg(3);
        let plan = AttackPlan::random(&cfg);
        // 15 candidates (node 0 protected) × 0.25 → 4 attackers.
        assert_eq!(plan.len(), 4);
        let mut last = None;
        for r in plan.roles() {
            assert_ne!(r.node, 0, "protected node compromised");
            assert!(r.node < cfg.nodes);
            assert_eq!(r.kind, AttackKind::FilterPoison);
            assert!(last < Some(r.node), "roles must be sorted by node, unique");
            last = Some(r.node);
        }
        assert!(plan.role_of(plan.roles()[0].node).is_some());
    }

    #[test]
    fn assign_replaces_previous_role_for_node() {
        let base = AttackRole {
            node: 3,
            kind: AttackKind::QueryFlood,
            from: SimTime::from_secs_f64(0.0),
            until: SimTime::from_secs_f64(10.0),
            period: SimDuration::from_secs_f64(1.0),
            sybil_k: 0,
            spoof: false,
        };
        let plan = AttackPlan::new().assign(base).assign(AttackRole {
            kind: AttackKind::Sybil,
            sybil_k: 5,
            ..base
        });
        assert_eq!(plan.len(), 1);
        assert_eq!(plan.role_of(3).unwrap().kind, AttackKind::Sybil);
    }

    #[test]
    fn role_window_is_half_open() {
        let role = AttackRole {
            node: 1,
            kind: AttackKind::QueryFlood,
            from: SimTime::from_secs_f64(10.0),
            until: SimTime::from_secs_f64(20.0),
            period: SimDuration::from_secs_f64(1.0),
            sybil_k: 0,
            spoof: false,
        };
        assert!(!role.active_at(SimTime::from_secs_f64(9.9)));
        assert!(role.active_at(SimTime::from_secs_f64(10.0)));
        assert!(role.active_at(SimTime::from_secs_f64(19.9)));
        assert!(!role.active_at(SimTime::from_secs_f64(20.0)));
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_attack_window_rejected() {
        let t = SimTime::from_secs_f64(5.0);
        let _ = AttackPlan::random(&AttackConfig { from: t, until: t, ..attack_cfg(1) });
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(64))]

            /// Seeded attack plans are bit-identical functions of their
            /// config across the whole parameter space: same inputs → the
            /// exact same role list, and every invariant (fraction count,
            /// protection, sorted unique nodes, config'd window) holds.
            #[test]
            fn seeded_attack_plans_are_bit_identical(
                seed in any::<u64>(),
                nodes in 1usize..64,
                fraction in 0.0f64..1.0,
                kind_ix in 0usize..3,
                protect_ix in any::<prop::sample::Index>(),
                sybil_k in 0usize..8,
            ) {
                let kind = [AttackKind::QueryFlood, AttackKind::FilterPoison,
                            AttackKind::Sybil][kind_ix];
                let cfg = AttackConfig {
                    nodes,
                    kind,
                    fraction,
                    from: SimTime::from_secs_f64(1.0),
                    until: SimTime::from_secs_f64(100.0),
                    period: SimDuration::from_secs_f64(2.0),
                    sybil_k,
                    spoof: false,
                    protect: vec![protect_ix.index(nodes)],
                    seed,
                };
                let a = AttackPlan::random(&cfg);
                let b = AttackPlan::random(&cfg);
                prop_assert_eq!(&a, &b, "same config must replay bit-identically");

                let candidates = nodes - 1; // one protected node
                let want = ((candidates as f64) * fraction).round() as usize;
                prop_assert_eq!(a.len(), want.min(candidates));
                let mut last = None;
                for r in a.roles() {
                    prop_assert!(r.node < nodes);
                    prop_assert_ne!(r.node, cfg.protect[0]);
                    prop_assert_eq!(r.kind, kind);
                    prop_assert_eq!(r.sybil_k, sybil_k);
                    prop_assert_eq!((r.from, r.until), (cfg.from, cfg.until));
                    prop_assert!(last < Some(r.node), "sorted, unique");
                    last = Some(r.node);
                }
            }
        }
    }
}
