//! # manet-sim
//!
//! A self-contained discrete-event simulator for mobile ad hoc networks —
//! the substrate replacing JiST/SWANS in this reproduction of the ICDE 2006
//! paper (see DESIGN.md for the substitution rationale).
//!
//! Components:
//!
//! * [`time`] — integer-microsecond virtual clock;
//! * [`events`] — deterministic event queue (FIFO tie-breaking);
//! * [`mobility`] — random-waypoint mobility with analytic position
//!   interpolation (speeds 2–10 m/s, 120 s holding time by default, per the
//!   paper's Table 7);
//! * [`radio`] — unit-disk connectivity, bandwidth + latency + jitter
//!   delays, optional random loss;
//! * [`grid`] — the bounded-staleness spatial hash grid behind O(degree)
//!   neighbour discovery at scale;
//! * [`aodv`] — on-demand route discovery (RFC 3561 core);
//! * [`engine`] — the simulator: applications implement
//!   [`engine::Application`] and exchange typed payloads via
//!   routed unicast and one-hop broadcast;
//! * [`trace`] — network counters, the frame-level event ring, and the
//!   structured per-query trace collector (see DESIGN.md §8).
//!
//! ## Example: two static nodes ping-pong over multiple hops
//!
//! ```
//! use manet_sim::engine::{Application, MsgMeta, NodeCtx, Simulator};
//! use manet_sim::mobility::{MobilityConfig, Pos};
//! use manet_sim::radio::RadioConfig;
//! use manet_sim::time::SimTime;
//!
//! struct Echo { got: Option<u32> }
//! impl Application<u32> for Echo {
//!     fn on_message(&mut self, _ctx: &mut NodeCtx<u32>, _meta: MsgMeta, payload: u32) {
//!         self.got = Some(payload);
//!     }
//!     fn on_timer(&mut self, ctx: &mut NodeCtx<u32>, _token: u64) {
//!         ctx.send_unicast(2, 42, 8); // reaches node 2 via node 1
//!     }
//! }
//!
//! let mut sim = Simulator::new(RadioConfig::default(), 1);
//! for x in [0.0, 200.0, 400.0] {
//!     sim.add_node(Pos::new(x, 0.0), MobilityConfig::frozen(), Echo { got: None }, 7);
//! }
//! sim.schedule_app_timer(0, SimTime::ZERO, 0);
//! sim.run_to_completion();
//! assert_eq!(sim.app(2).got, Some(42));
//! ```

pub mod aodv;
pub mod engine;
pub mod events;
pub mod fault;
pub mod grid;
pub mod mobility;
pub mod packet;
pub mod radio;
pub mod time;
pub mod trace;

pub use engine::{Application, MsgMeta, NeighborMode, NodeCtx, Simulator};
pub use fault::{
    AttackConfig, AttackKind, AttackPlan, AttackRole, ChurnConfig, FaultAction, FaultEvent,
    FaultPlan,
};
pub use mobility::{MobilityConfig, Pos};
pub use packet::NodeId;
pub use radio::{EnergyConfig, RadioConfig};
pub use time::{SimDuration, SimTime};
pub use trace::{
    DropCause, FinalizeKind, FrameTag, FrameTraceLog, LossCause, NetStats, QueryEvent, QueryId,
    QueryTraceLog, QueryTraceRecord, TraceEvent,
};

// Experiment descriptions embed these configs and cross thread boundaries
// in the bench sweep harness; keep them thread-portable.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<RadioConfig>();
    assert_send_sync::<EnergyConfig>();
    assert_send_sync::<MobilityConfig>();
    assert_send_sync::<NeighborMode>();
    assert_send_sync::<NetStats>();
    assert_send_sync::<FaultPlan>();
    assert_send_sync::<ChurnConfig>();
    assert_send_sync::<SimDuration>();
    assert_send_sync::<SimTime>();
    // Trace logs ride inside experiment outcomes across the sweep pool.
    assert_send_sync::<QueryTraceLog>();
    assert_send_sync::<FrameTraceLog>();
};
