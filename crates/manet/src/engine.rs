//! The discrete-event simulation engine: nodes, radio, AODV, and the
//! application layer, driven by one event queue.
//!
//! The engine owns every per-node component. Applications interact with the
//! world exclusively through a [`NodeCtx`] handed into their callbacks; the
//! context records commands (send, broadcast, timers) that the engine
//! executes after the callback returns, which keeps borrows simple and the
//! event order deterministic.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::aodv::{AodvConfig, AodvState, AodvTimer, LinkCmd};
use crate::events::EventQueue;
use crate::fault::{FaultAction, FaultPlan};
use crate::grid::SpatialGrid;
use crate::mobility::{MobilityConfig, MobilityState, Pos};
use crate::packet::{DataPacket, Frame, NodeId};
use crate::radio::RadioConfig;
use crate::time::{SimDuration, SimTime};
use crate::trace::{
    EventTrace, FrameTag, FrameTraceLog, LossCause, NetStats, QueryEvent, QueryId, QueryTraceLog,
    QueryTraceState, TraceEvent,
};

/// Fraction of the radio range the grid snapshot may drift before a sweep:
/// queries widen their search box by at most this fraction of the range, so
/// candidate sets stay within the 3×3-cell neighbourhood while sweeps remain
/// rare (one every `0.2·range/max_speed` simulated seconds).
const GRID_SLACK_FACTOR: f64 = 0.2;

/// How nodes learn who their one-hop neighbours are.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum NeighborMode {
    /// Idealized oracle: `neighbors()` reflects true positions instantly
    /// (models perfect beaconing with zero overhead; the default).
    Oracle,
    /// Periodic HELLO beacons: each node broadcasts a tiny frame every
    /// `period`; a neighbour entry expires `expiry` after its last beacon.
    /// Costs real frames and energy, and neighbour views lag mobility —
    /// stale entries and late discoveries become possible, as in a real
    /// 802.11 MANET.
    Beacon {
        /// Beacon period.
        period: SimDuration,
        /// Entry lifetime after the last heard beacon.
        expiry: SimDuration,
    },
}

/// Metadata accompanying an application message delivery.
#[derive(Debug, Clone, Copy)]
pub struct MsgMeta {
    /// End-to-end source node.
    pub src: NodeId,
    /// Node the frame was physically received from (last hop).
    pub link_from: NodeId,
    /// `true` when the message arrived as a one-hop broadcast.
    pub broadcast: bool,
    /// Radio hops travelled: 1 for a one-hop broadcast, the routed hop
    /// count for a unicast (0 for a self-send).
    pub hops: u32,
}

/// The application running on every node. One type per simulation;
/// per-node behaviour is data inside the implementor.
pub trait Application<P> {
    /// A routed unicast or one-hop broadcast arrived.
    fn on_message(&mut self, ctx: &mut NodeCtx<P>, meta: MsgMeta, payload: P);

    /// An application timer armed via [`NodeCtx::set_timer`] fired.
    fn on_timer(&mut self, ctx: &mut NodeCtx<P>, token: u64);

    /// A unicast previously submitted could not be delivered (route
    /// discovery exhausted its retries).
    fn on_delivery_failed(&mut self, _ctx: &mut NodeCtx<P>, _dst: NodeId, _payload: P) {}

    /// The node crashed (fault injection): discard volatile state. No
    /// context is available — a dead node cannot send or arm timers.
    /// Whatever the implementor keeps is, by definition, the state that
    /// survives the reboot (the device's storage partition).
    fn on_crash(&mut self) {}

    /// The node rebooted after a crash: re-arm periodic timers here. All
    /// timers armed before the crash were invalidated.
    fn on_revive(&mut self, _ctx: &mut NodeCtx<P>) {}
}

/// Commands an application can issue from inside a callback.
enum AppCmd<P> {
    Unicast { dst: NodeId, payload: P, bytes: usize },
    Broadcast { payload: P, bytes: usize },
    Timer { delay: SimDuration, token: u64 },
    RejectFrame,
    PrimeRoute { dst: NodeId, via: NodeId, hops: u32 },
}

/// The application's window into the simulation during a callback.
pub struct NodeCtx<'a, P> {
    /// Current simulated time.
    pub now: SimTime,
    /// This node's id.
    pub id: NodeId,
    /// This node's current position.
    pub position: Pos,
    neighbors: &'a [NodeId],
    cmds: Vec<AppCmd<P>>,
    qtrace: Option<&'a mut QueryTraceState>,
}

impl<'a, P> NodeCtx<'a, P> {
    /// Nodes currently within radio range (idealized beaconing).
    pub fn neighbors(&self) -> &[NodeId] {
        self.neighbors
    }

    /// `true` when per-query tracing is enabled. Use to skip building
    /// expensive event payloads when nobody is listening.
    pub fn trace_enabled(&self) -> bool {
        self.qtrace.is_some()
    }

    /// Records a structured query-trace event at the current node and time.
    /// A no-op (one `Option` check) when tracing is disabled.
    pub fn trace(&mut self, query: Option<QueryId>, event: QueryEvent) {
        if let Some(qt) = self.qtrace.as_deref_mut() {
            qt.record(self.now, self.id, query, event);
        }
    }

    /// Sends `payload` to `dst` via AODV multi-hop routing. `bytes` is the
    /// payload's wire size.
    pub fn send_unicast(&mut self, dst: NodeId, payload: P, bytes: usize) {
        self.cmds.push(AppCmd::Unicast { dst, payload, bytes });
    }

    /// One-hop broadcast to every current neighbour (not routed, not
    /// retransmitted).
    pub fn broadcast(&mut self, payload: P, bytes: usize) {
        self.cmds.push(AppCmd::Broadcast { payload, bytes });
    }

    /// Arms an application timer delivering `token` after `delay`.
    pub fn set_timer(&mut self, delay: SimDuration, token: u64) {
        self.cmds.push(AppCmd::Timer { delay, token });
    }

    /// Counts a delivered frame the application refused to process
    /// (defensive decode or an active defense —
    /// [`NetStats::app_frames_rejected`]). Pair every call with a
    /// [`QueryEvent::AttackFrameDropped`] trace so zero-drift can
    /// reconcile the books.
    pub fn reject_frame(&mut self) {
        self.cmds.push(AppCmd::RejectFrame);
    }

    /// Primes this node's AODV table with a reverse route: `dst` is
    /// reachable via neighbour `via` in `hops` hops. Applications that
    /// relay their own query floods call this with the flood's last hop
    /// (RREQ-style reverse-path setup), so unicast replies find warm
    /// routes instead of each replier flooding its own RREQ. The offer
    /// carries no destination sequence number and can never downgrade
    /// routing state AODV learned for itself.
    pub fn prime_route(&mut self, dst: NodeId, via: NodeId, hops: u32) {
        self.cmds.push(AppCmd::PrimeRoute { dst, via, hops });
    }
}

enum Event<P> {
    Deliver { to: NodeId, link_from: NodeId, frame: Frame<P> },
    // Timers carry the arming node's epoch: a crash bumps the epoch, so
    // timers armed before it fire as no-ops — volatile state dies with
    // the node instead of resurrecting through the queue.
    AppTimer { node: NodeId, token: u64, epoch: u64 },
    AodvTimer { node: NodeId, timer: AodvTimer, epoch: u64 },
    Beacon { node: NodeId },
    Fault(FaultAction),
}

struct NodeEntry<P, A> {
    mobility: MobilityState,
    aodv: AodvState<P>,
    app: A,
    /// Beacon mode: (neighbour id, last-heard time), sorted by id so the
    /// neighbour view is produced by a filter instead of a per-call sort.
    heard: Vec<(NodeId, SimTime)>,
}

/// The simulator.
pub struct Simulator<P, A> {
    nodes: Vec<NodeEntry<P, A>>,
    queue: EventQueue<Event<P>>,
    radio: RadioConfig,
    rng: StdRng,
    stats: NetStats,
    /// Lazily cached positions; entry `i` is exact when `pos_stamp[i]`
    /// equals the current event time (see [`Self::pos_of`]).
    positions: Vec<Pos>,
    /// Event time at which each cached position was computed.
    pos_stamp: Vec<SimTime>,
    /// Spatial index over bounded-staleness positions (cell = radio range).
    grid: SpatialGrid,
    /// When the grid snapshot was last refreshed for every node.
    grid_last_sweep: SimTime,
    /// Sweep cadence: `GRID_SLACK_FACTOR · range / max_speed`, keeping
    /// snapshot drift a small fraction of the radio range.
    grid_period: SimDuration,
    /// Fastest speed any node can move at (0 for all-static networks).
    max_speed: f64,
    /// Reusable buffer for neighbour lists (avoids per-event allocation).
    nbr_scratch: Vec<NodeId>,
    /// Reusable buffer for grid candidate sets.
    cand_scratch: Vec<NodeId>,
    /// Joules consumed by each node's radio (tx + rx).
    energy_j: Vec<f64>,
    /// Per-node up/down status (fault injection; all up by default).
    up: Vec<bool>,
    /// Per-node crash epoch; bumped on crash to invalidate stale timers.
    epochs: Vec<u64>,
    /// Links currently severed by a fault plan, as normalized (lo, hi) pairs.
    severed: std::collections::HashSet<(NodeId, NodeId)>,
    /// Extra per-frame loss probability from an active radio degradation.
    extra_loss: f64,
    /// Frames currently in the air: scheduled `Deliver` events not yet
    /// dispatched (a gauge input).
    inflight_frames: u64,
    neighbor_mode: NeighborMode,
    beacons_started: bool,
    trace: Option<EventTrace>,
    qtrace: Option<QueryTraceState>,
}

impl<P: Clone + 'static, A: Application<P>> Simulator<P, A> {
    /// Creates a simulator with the given radio model and RNG seed.
    pub fn new(radio: RadioConfig, seed: u64) -> Self {
        let grid = SpatialGrid::new(radio.range_m);
        Simulator {
            nodes: Vec::new(),
            queue: EventQueue::new(),
            radio,
            rng: StdRng::seed_from_u64(seed),
            stats: NetStats::default(),
            positions: Vec::new(),
            pos_stamp: Vec::new(),
            grid,
            grid_last_sweep: SimTime::ZERO,
            grid_period: SimDuration::ZERO,
            max_speed: 0.0,
            nbr_scratch: Vec::new(),
            cand_scratch: Vec::new(),
            energy_j: Vec::new(),
            up: Vec::new(),
            epochs: Vec::new(),
            severed: std::collections::HashSet::new(),
            extra_loss: 0.0,
            inflight_frames: 0,
            neighbor_mode: NeighborMode::Oracle,
            beacons_started: false,
            trace: None,
            qtrace: None,
        }
    }

    /// Enables the bounded event trace (see [`EventTrace`]).
    pub fn enable_trace(&mut self, capacity: usize) {
        self.trace = Some(EventTrace::new(capacity));
    }

    /// The event trace, when enabled.
    pub fn trace(&self) -> Option<&EventTrace> {
        self.trace.as_ref()
    }

    /// Takes the frame-level trace out of the engine as a plain log (for
    /// cross-checking against [`NetStats`]). Tracing stops.
    pub fn take_frame_trace(&mut self) -> Option<FrameTraceLog> {
        self.trace
            .take()
            .map(|t| FrameTraceLog { entries: t.entries().copied().collect(), dropped: t.dropped })
    }

    /// Enables the structured per-query trace: one bounded ring of
    /// `capacity` records per node (see [`QueryTraceState`]). Applications
    /// record events through [`NodeCtx::trace`]; the engine itself records
    /// crash/revive markers.
    pub fn enable_query_trace(&mut self, capacity: usize) {
        self.qtrace = Some(QueryTraceState::new(capacity));
    }

    /// The query-trace collector, when enabled.
    pub fn query_trace(&self) -> Option<&QueryTraceState> {
        self.qtrace.as_ref()
    }

    /// Stitches the per-node query-trace rings into one engine-ordered log,
    /// consuming the collector. Tracing stops.
    pub fn take_query_trace(&mut self) -> Option<QueryTraceLog> {
        self.qtrace.take().map(QueryTraceState::into_log)
    }

    /// Selects the neighbour-discovery mode (before running).
    pub fn set_neighbor_mode(&mut self, mode: NeighborMode) {
        self.neighbor_mode = mode;
    }

    /// Adds a node at `start`, returning its id. Mobility randomness is
    /// derived from `seed` and the node id, so node sets are reproducible.
    pub fn add_node(&mut self, start: Pos, mobility: MobilityConfig, app: A, seed: u64) -> NodeId {
        let id = self.nodes.len();
        let now = self.queue.now();
        let mut state = MobilityState::new(
            mobility,
            start,
            seed ^ (id as u64).wrapping_mul(0x9E3779B97F4A7C15),
        );
        // Register the node at its position *now*, not at `start`: a node
        // added mid-run may already be past its first waypoint pause.
        let p0 = match state.peek(now) {
            Some(p) => p,
            None => state.position_at(now),
        };
        self.nodes.push(NodeEntry {
            mobility: state,
            aodv: AodvState::new(id, AodvConfig::default()),
            app,
            heard: Vec::new(),
        });
        self.positions.push(p0);
        self.pos_stamp.push(now);
        self.grid.insert(id, p0);
        if mobility.max_speed() > self.max_speed {
            self.max_speed = mobility.max_speed();
            self.grid_period =
                SimDuration::from_secs_f64(GRID_SLACK_FACTOR * self.radio.range_m / self.max_speed);
        }
        self.energy_j.push(0.0);
        self.up.push(true);
        self.epochs.push(0);
        id
    }

    /// Schedules every event of `plan` into the queue. Call after adding
    /// all nodes and before (or between) `run_until` calls; event times
    /// must not lie in the past.
    ///
    /// # Panics
    /// Panics when the plan names a node the simulator does not have.
    pub fn install_fault_plan(&mut self, plan: &FaultPlan) {
        let check = |n: NodeId| {
            assert!(n < self.nodes.len(), "fault plan names unknown node {n}");
        };
        for ev in plan.events() {
            match ev.action {
                FaultAction::Crash(n) | FaultAction::Revive(n) => check(n),
                FaultAction::SeverLink(a, b) | FaultAction::RestoreLink(a, b) => {
                    check(a);
                    check(b);
                }
                FaultAction::DegradeRadio { .. } | FaultAction::RestoreRadio => {}
            }
            self.queue.schedule(ev.at, Event::Fault(ev.action));
        }
    }

    /// `true` when `node` is currently up (not crashed).
    pub fn is_up(&self, node: NodeId) -> bool {
        self.up[node]
    }

    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.queue.now()
    }

    /// Network statistics so far.
    pub fn stats(&self) -> &NetStats {
        &self.stats
    }

    /// Radio energy (joules) node `node` has consumed so far.
    pub fn energy_joules(&self, node: NodeId) -> f64 {
        self.energy_j[node]
    }

    /// Number of pending events in the queue (a gauge input).
    pub fn pending_events(&self) -> usize {
        self.queue.len()
    }

    /// Occupied timer-wheel slots across all levels (a gauge input).
    pub fn wheel_occupied_slots(&self) -> u32 {
        self.queue.occupied_slots()
    }

    /// Spatial-grid shape: `(occupied_cells, max_bucket_len)` over the
    /// current bounded-staleness snapshot (a gauge input).
    pub fn grid_stats(&self) -> (usize, usize) {
        (self.grid.occupied_cells(), self.grid.max_bucket_len())
    }

    /// Frames currently in the air — `Deliver` events scheduled but not
    /// yet dispatched (a gauge input).
    pub fn inflight_frames(&self) -> u64 {
        self.inflight_frames
    }

    /// Total radio energy (joules) across all nodes.
    pub fn total_energy_joules(&self) -> f64 {
        self.energy_j.iter().sum()
    }

    /// Immutable access to a node's application (for result collection).
    pub fn app(&self, node: NodeId) -> &A {
        &self.nodes[node].app
    }

    /// Mutable access to a node's application (test injection only; do not
    /// send from here — use timers).
    pub fn app_mut(&mut self, node: NodeId) -> &mut A {
        &mut self.nodes[node].app
    }

    /// Position of `node` at the current time.
    pub fn position(&mut self, node: NodeId) -> Pos {
        let now = self.queue.now();
        self.nodes[node].mobility.position_at(now)
    }

    /// Position of `node` at an arbitrary time `t` (not after the node's
    /// next waypoint draw would be needed *and* then re-queried in the
    /// past; the engine clock is monotone, so forward probes are safe).
    ///
    /// Uses the mobility model's non-mutating
    /// [`peek`](crate::mobility::MobilityState::peek) when `t` falls inside
    /// the node's current leg — the common case for high-frequency range
    /// probes — and only steps the model otherwise.
    pub fn position_at(&mut self, node: NodeId, t: SimTime) -> Pos {
        let m = &mut self.nodes[node].mobility;
        match m.peek(t) {
            Some(p) => p,
            None => m.position_at(t),
        }
    }

    /// Schedules an application timer for `node` at absolute time `at`.
    /// This is how external workloads (query issue times) enter the system.
    /// The timer is tagged with the node's current epoch: it is silently
    /// dropped if the node crashes before it fires.
    pub fn schedule_app_timer(&mut self, node: NodeId, at: SimTime, token: u64) {
        self.queue
            .schedule(at, Event::AppTimer { node, token, epoch: self.epochs[node] });
    }

    /// Runs until the queue is empty or the clock passes `horizon`.
    /// Returns the number of events processed.
    pub fn run_until(&mut self, horizon: SimTime) -> u64 {
        if !self.beacons_started {
            self.beacons_started = true;
            if let NeighborMode::Beacon { period, .. } = self.neighbor_mode {
                // Stagger initial beacons across one period.
                let n = self.nodes.len().max(1) as f64;
                for i in 0..self.nodes.len() {
                    let offset = period.mul_f64(i as f64 / n);
                    self.queue.schedule(self.queue.now() + offset, Event::Beacon { node: i });
                }
            }
        }
        let mut processed = 0;
        while let Some(at) = self.queue.peek_time() {
            if at > horizon {
                break;
            }
            let (now, ev) = self.queue.pop().expect("peeked");
            self.dispatch(now, ev);
            processed += 1;
        }
        processed
    }

    /// Runs until no events remain.
    pub fn run_to_completion(&mut self) -> u64 {
        self.run_until(SimTime(u64::MAX))
    }

    /// The exact position of `node` at event time `now`, computed at most
    /// once per (node, event time) via the stamp cache. Random-waypoint
    /// positions are pure functions of time for monotone queries (legs are
    /// drawn lazily from a per-node RNG), so computing them on demand is
    /// bit-identical to refreshing every node at every dispatch.
    fn pos_of(&mut self, node: NodeId, now: SimTime) -> Pos {
        if self.pos_stamp[node] != now {
            let m = &mut self.nodes[node].mobility;
            self.positions[node] = match m.peek(now) {
                Some(p) => p,
                None => m.position_at(now),
            };
            self.pos_stamp[node] = now;
        }
        self.positions[node]
    }

    /// Refreshes the spatial grid once per `grid_period`. Runs before every
    /// event, so at any query the snapshot is younger than one period and
    /// [`Self::grid_slack`] bounds the drift.
    fn maybe_sweep(&mut self, now: SimTime) {
        if self.max_speed <= 0.0 {
            return; // static network: insert-time positions never drift
        }
        if now.since(self.grid_last_sweep) < self.grid_period {
            return;
        }
        let mut span = sim_obs::span!("grid::sweep");
        span.add_units(self.nodes.len() as u64);
        for i in 0..self.nodes.len() {
            let p = self.pos_of(i, now);
            self.grid.update(i, p);
        }
        self.grid_last_sweep = now;
    }

    /// Upper bound on how far any node may have moved since the grid
    /// snapshot; queries widen their radius by this much so the candidate
    /// set is a guaranteed superset of the truly in-range nodes.
    fn grid_slack(&self, now: SimTime) -> f64 {
        self.max_speed * now.since(self.grid_last_sweep).as_secs_f64()
    }

    fn link_key(a: NodeId, b: NodeId) -> (NodeId, NodeId) {
        (a.min(b), a.max(b))
    }

    fn link_severed(&self, a: NodeId, b: NodeId) -> bool {
        !self.severed.is_empty() && self.severed.contains(&Self::link_key(a, b))
    }

    /// Fills `out` (cleared first) with `node`'s one-hop neighbours,
    /// ascending by id.
    fn neighbors_into(&mut self, node: NodeId, now: SimTime, out: &mut Vec<NodeId>) {
        out.clear();
        match self.neighbor_mode {
            NeighborMode::Oracle => {
                // The oracle reflects the physical truth: crashed nodes and
                // severed links are invisible, which is how routing observes
                // churn (forwarding toward a vanished neighbour trips the
                // AODV link-break path). The grid supplies a sorted superset
                // of candidates; the exact in-range re-check with fresh
                // positions reproduces the brute-force scan bit-for-bit.
                let p = self.pos_of(node, now);
                let mut cand = std::mem::take(&mut self.cand_scratch);
                self.grid.query_into(p, self.radio.range_m + self.grid_slack(now), &mut cand);
                for &j in &cand {
                    if j == node || !self.up[j] || self.link_severed(node, j) {
                        continue;
                    }
                    let pj = self.pos_of(j, now);
                    if self.radio.in_range(p, pj) {
                        out.push(j);
                    }
                }
                self.cand_scratch = cand;
            }
            NeighborMode::Beacon { expiry, .. } => {
                // Beacon views lag reality on purpose: a crashed neighbour
                // stays listed until its entry expires, as it would in a
                // real 802.11 MANET. `heard` is sorted by id, so filtering
                // preserves ascending order without a per-call sort.
                out.extend(
                    self.nodes[node]
                        .heard
                        .iter()
                        .filter(|&&(_, heard)| heard + expiry > now)
                        .map(|&(n, _)| n),
                );
            }
        }
    }

    fn dispatch(&mut self, now: SimTime, ev: Event<P>) {
        self.maybe_sweep(now);
        match ev {
            Event::Deliver { to, link_from, frame } => {
                self.inflight_frames -= 1;
                let mut span = sim_obs::span!("radio::deliver");
                span.add_bytes(frame.bytes() as u64);
                span.add_units(1);
                if !self.up[to] {
                    // Crashed mid-flight: the frame dies on a silent radio.
                    self.stats.frames_dropped_node_down += 1;
                    self.stats.frames_lost += 1;
                    self.trace_event(
                        now,
                        TraceEvent::FrameLost {
                            from: link_from,
                            tag: Self::tag_of(&frame),
                            cause: LossCause::NodeDown,
                        },
                    );
                    return;
                }
                self.trace_event(
                    now,
                    TraceEvent::FrameDelivered { to, from: link_from, tag: Self::tag_of(&frame) },
                );
                match frame {
                    Frame::Hello => {
                        let heard = &mut self.nodes[to].heard;
                        match heard.binary_search_by_key(&link_from, |e| e.0) {
                            Ok(i) => heard[i].1 = now,
                            Err(i) => heard.insert(i, (link_from, now)),
                        }
                    }
                    Frame::Bcast { src, payload, bytes: _ } => {
                        self.stats.app_broadcasts_received += 1;
                        let meta = MsgMeta { src, link_from, broadcast: true, hops: 1 };
                        self.run_app(to, now, |app, ctx| app.on_message(ctx, meta, payload));
                    }
                    other => {
                        let mut is_nbr_list = std::mem::take(&mut self.nbr_scratch);
                        self.neighbors_into(to, now, &mut is_nbr_list);
                        let cmds = {
                            let is_neighbor = |n: NodeId| is_nbr_list.binary_search(&n).is_ok();
                            self.nodes[to].aodv.on_frame(link_from, other, now, &is_neighbor)
                        };
                        // Return the buffer before executing commands so a
                        // nested `run_app` can reuse it.
                        self.nbr_scratch = is_nbr_list;
                        self.execute_link_cmds(to, now, cmds);
                    }
                }
            }
            Event::AppTimer { node, token, epoch } => {
                if self.up[node] && epoch == self.epochs[node] {
                    self.run_app(node, now, |app, ctx| app.on_timer(ctx, token));
                }
            }
            Event::AodvTimer { node, timer, epoch } => {
                if self.up[node] && epoch == self.epochs[node] {
                    let cmds = self.nodes[node].aodv.on_timer(timer, now);
                    self.execute_link_cmds(node, now, cmds);
                }
            }
            Event::Beacon { node } => {
                // The beacon chain survives crashes (a down node just stays
                // silent), so beaconing resumes by itself after a revive.
                if self.up[node] {
                    self.transmit_broadcast(node, now, Frame::Hello);
                }
                if let NeighborMode::Beacon { period, .. } = self.neighbor_mode {
                    self.queue.schedule(now + period, Event::Beacon { node });
                }
            }
            Event::Fault(action) => self.apply_fault(now, action),
        }
    }

    fn apply_fault(&mut self, now: SimTime, action: FaultAction) {
        match action {
            FaultAction::Crash(n) => {
                if !self.up[n] {
                    return; // already down
                }
                self.up[n] = false;
                self.epochs[n] += 1;
                self.stats.node_crashes += 1;
                // Volatile state dies: routing tables, duplicate caches,
                // buffered packets, the beacon-heard map, and whatever the
                // application drops in its hook. The application object
                // itself (the storage partition) survives.
                self.nodes[n].heard.clear();
                self.nodes[n].aodv.reset();
                self.nodes[n].app.on_crash();
                self.trace_event(now, TraceEvent::NodeCrashed { node: n });
                // `on_crash` gets no ctx (a dead node cannot act), so the
                // engine records the terminal timeline marker itself.
                self.qtrace_record(now, n, QueryEvent::Crashed);
            }
            FaultAction::Revive(n) => {
                if self.up[n] {
                    return; // never crashed, or already revived
                }
                self.up[n] = true;
                self.stats.node_revivals += 1;
                self.trace_event(now, TraceEvent::NodeRevived { node: n });
                self.qtrace_record(now, n, QueryEvent::Revived);
                self.run_app(n, now, |app, ctx| app.on_revive(ctx));
            }
            FaultAction::SeverLink(a, b) => {
                self.severed.insert(Self::link_key(a, b));
            }
            FaultAction::RestoreLink(a, b) => {
                self.severed.remove(&Self::link_key(a, b));
            }
            FaultAction::DegradeRadio { extra_loss } => self.extra_loss = extra_loss,
            FaultAction::RestoreRadio => self.extra_loss = 0.0,
        }
    }

    /// Runs an application callback and then executes its queued commands.
    fn run_app<F>(&mut self, node: NodeId, now: SimTime, f: F)
    where
        F: FnOnce(&mut A, &mut NodeCtx<P>),
    {
        if !self.up[node] {
            return;
        }
        let mut neighbors = std::mem::take(&mut self.nbr_scratch);
        self.neighbors_into(node, now, &mut neighbors);
        let position = self.pos_of(node, now);
        let mut ctx = NodeCtx {
            now,
            id: node,
            position,
            neighbors: &neighbors,
            cmds: Vec::new(),
            qtrace: self.qtrace.as_mut(),
        };
        // `ctx` borrows locals plus the `qtrace` field, so borrowing the
        // app out of `self.nodes` stays a disjoint field borrow.
        f(&mut self.nodes[node].app, &mut ctx);
        let cmds = ctx.cmds;
        self.nbr_scratch = neighbors;
        for cmd in cmds {
            match cmd {
                AppCmd::Unicast { dst, payload, bytes } => {
                    self.stats.app_unicasts_submitted += 1;
                    let link = self.nodes[node].aodv.send(dst, payload, bytes, now);
                    self.execute_link_cmds(node, now, link);
                }
                AppCmd::Broadcast { payload, bytes } => {
                    self.stats.app_broadcasts_sent += 1;
                    let frame = Frame::Bcast { src: node, payload, bytes };
                    self.transmit_broadcast(node, now, frame);
                }
                AppCmd::Timer { delay, token } => {
                    self.queue.schedule(
                        now + delay,
                        Event::AppTimer { node, token, epoch: self.epochs[node] },
                    );
                }
                AppCmd::RejectFrame => {
                    self.stats.app_frames_rejected += 1;
                }
                AppCmd::PrimeRoute { dst, via, hops } => {
                    self.nodes[node].aodv.offer_app_route(dst, via, hops, now);
                }
            }
        }
    }

    fn execute_link_cmds(&mut self, node: NodeId, now: SimTime, cmds: Vec<LinkCmd<P>>) {
        for cmd in cmds {
            match cmd {
                LinkCmd::SendTo(nbr, frame) => self.transmit_unicast(node, nbr, now, frame),
                LinkCmd::Broadcast(frame) => self.transmit_broadcast(node, now, frame),
                LinkCmd::SetTimer(delay, timer) => {
                    self.queue.schedule(
                        now + delay,
                        Event::AodvTimer { node, timer, epoch: self.epochs[node] },
                    );
                }
                LinkCmd::DeliverUp(pkt) => {
                    self.stats.app_unicasts_delivered += 1;
                    let meta =
                        MsgMeta { src: pkt.src, link_from: node, broadcast: false, hops: pkt.hops };
                    self.run_app(node, now, |app, ctx| app.on_message(ctx, meta, pkt.payload));
                }
                LinkCmd::DropFailed(pkt) => {
                    self.stats.app_unicasts_failed += 1;
                    let DataPacket { dst, payload, .. } = pkt;
                    self.run_app(node, now, |app, ctx| app.on_delivery_failed(ctx, dst, payload));
                }
                LinkCmd::DropForwarded(pkt) => {
                    // A relay abandoned someone else's packet: count it
                    // (and trace it) but run no app callback — the
                    // originator's own timeout machinery recovers.
                    self.stats.data_drops_forwarded += 1;
                    self.trace_event(
                        now,
                        TraceEvent::ForwardDropped { at: node, src: pkt.src, dst: pkt.dst },
                    );
                }
            }
        }
    }

    /// Extra loss roll from an active radio degradation window.
    fn degrade_lost(&mut self) -> bool {
        self.extra_loss > 0.0 && self.rng.random_range(0.0..1.0) < self.extra_loss
    }

    fn transmit_unicast(&mut self, from: NodeId, to: NodeId, now: SimTime, frame: Frame<P>) {
        if !self.up[from] {
            return; // a dead node's queued commands transmit nothing
        }
        let mut span = sim_obs::span!("radio::tx");
        span.add_bytes(frame.bytes() as u64);
        span.add_units(1);
        self.count_frame(&frame);
        self.trace_event(
            now,
            TraceEvent::FrameSent { from, tag: Self::tag_of(&frame), bytes: frame.bytes() },
        );
        self.energy_j[from] += self.radio.energy.tx_joules(frame.bytes());
        if self.link_severed(from, to) {
            self.stats.frames_blocked_link_down += 1;
            self.stats.frames_lost += 1;
            self.trace_lost(now, from, &frame, LossCause::LinkDown);
            return;
        }
        let pf = self.pos_of(from, now);
        let pt = self.pos_of(to, now);
        if !self.radio.frame_received(pf, pt, &mut self.rng)
            || self.radio.lost(&mut self.rng)
            || self.degrade_lost()
        {
            self.stats.frames_lost += 1;
            self.trace_lost(now, from, &frame, LossCause::Radio);
            return;
        }
        if !self.up[to] {
            // Transmitted into the void; receiver pays nothing.
            self.stats.frames_dropped_node_down += 1;
            self.stats.frames_lost += 1;
            self.trace_lost(now, from, &frame, LossCause::NodeDown);
            return;
        }
        self.energy_j[to] += self.radio.energy.rx_joules(frame.bytes());
        let delay = self.radio.tx_delay(frame.bytes(), &mut self.rng);
        self.inflight_frames += 1;
        self.queue.schedule(now + delay, Event::Deliver { to, link_from: from, frame });
    }

    fn transmit_broadcast(&mut self, from: NodeId, now: SimTime, frame: Frame<P>) {
        if !self.up[from] {
            return;
        }
        let mut span = sim_obs::span!("radio::tx");
        span.add_bytes(frame.bytes() as u64);
        span.add_units(1);
        self.count_frame(&frame);
        self.trace_event(
            now,
            TraceEvent::FrameSent { from, tag: Self::tag_of(&frame), bytes: frame.bytes() },
        );
        // One transmission regardless of receiver count; every in-range
        // node pays reception.
        self.energy_j[from] += self.radio.energy.tx_joules(frame.bytes());
        let delay = self.radio.tx_delay(frame.bytes(), &mut self.rng);
        let p = self.pos_of(from, now);
        if self.radio.deterministic_reception() {
            // Unit disk: reception equals `in_range` and draws no RNG, so
            // the receiver loop can be pruned to the grid's candidate set.
            // Candidates come back sorted ascending — the same receiver
            // order as the full 0..n scan — and loss rolls happen only for
            // truly in-range receivers in both formulations, so the random
            // stream is untouched.
            let mut cand = std::mem::take(&mut self.cand_scratch);
            self.grid.query_into(p, self.radio.range_m + self.grid_slack(now), &mut cand);
            for &to in &cand {
                if to == from {
                    continue;
                }
                let pt = self.pos_of(to, now);
                if !self.radio.in_range(p, pt) {
                    continue;
                }
                self.deliver_broadcast_copy(from, to, now, delay, &frame);
            }
            self.cand_scratch = cand;
        } else {
            // Shadowing models roll the dice for every node, so every node
            // must be visited to keep the RNG stream well-defined.
            for to in 0..self.nodes.len() {
                if to == from {
                    continue;
                }
                let pt = self.pos_of(to, now);
                if !self.radio.frame_received(p, pt, &mut self.rng) {
                    continue;
                }
                self.deliver_broadcast_copy(from, to, now, delay, &frame);
            }
        }
    }

    /// Per-receiver tail of a broadcast, after the reception gate. Copy
    /// losses are accounted exactly like unicast losses (counter + traced
    /// cause), so trace-derived loss counts reconstruct `NetStats`
    /// regardless of frame kind.
    fn deliver_broadcast_copy(
        &mut self,
        from: NodeId,
        to: NodeId,
        now: SimTime,
        delay: SimDuration,
        frame: &Frame<P>,
    ) {
        if self.link_severed(from, to) {
            self.stats.frames_blocked_link_down += 1;
            self.stats.frames_lost += 1;
            self.trace_lost(now, from, frame, LossCause::LinkDown);
            return;
        }
        if self.radio.lost(&mut self.rng) || self.degrade_lost() {
            self.stats.frames_lost += 1;
            self.trace_lost(now, from, frame, LossCause::Radio);
            return;
        }
        if !self.up[to] {
            self.stats.frames_dropped_node_down += 1;
            self.stats.frames_lost += 1;
            self.trace_lost(now, from, frame, LossCause::NodeDown);
            return;
        }
        self.energy_j[to] += self.radio.energy.rx_joules(frame.bytes());
        self.inflight_frames += 1;
        self.queue
            .schedule(now + delay, Event::Deliver { to, link_from: from, frame: frame.clone() });
    }

    fn count_frame(&mut self, frame: &Frame<P>) {
        self.stats.frames_sent += 1;
        self.stats.bytes_sent += frame.bytes() as u64;
        match frame {
            Frame::Aodv(_) => self.stats.aodv_frames += 1,
            Frame::Data(_) => self.stats.data_frames += 1,
            Frame::Bcast { .. } => self.stats.bcast_frames += 1,
            Frame::Hello => self.stats.hello_frames += 1,
        }
    }

    fn tag_of(frame: &Frame<P>) -> FrameTag {
        match frame {
            Frame::Aodv(_) => FrameTag::Aodv,
            Frame::Data(_) => FrameTag::Data,
            Frame::Bcast { .. } => FrameTag::Bcast,
            Frame::Hello => FrameTag::Hello,
        }
    }

    fn trace_event(&mut self, at: SimTime, ev: TraceEvent) {
        if let Some(t) = self.trace.as_mut() {
            t.record(at, ev);
        }
    }

    fn trace_lost(&mut self, at: SimTime, from: NodeId, frame: &Frame<P>, cause: LossCause) {
        self.trace_event(at, TraceEvent::FrameLost { from, tag: Self::tag_of(frame), cause });
    }

    /// Engine-side query-trace record (crash/revive markers carry no query).
    fn qtrace_record(&mut self, at: SimTime, node: NodeId, ev: QueryEvent) {
        if let Some(q) = self.qtrace.as_mut() {
            q.record(at, node, None, ev);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    /// Application that only touches its neighbour view, so timer events
    /// exercise the grid-backed discovery path inside `dispatch`.
    struct Idle;
    impl Application<()> for Idle {
        fn on_message(&mut self, _ctx: &mut NodeCtx<()>, _meta: MsgMeta, _payload: ()) {}
        fn on_timer(&mut self, ctx: &mut NodeCtx<()>, _token: u64) {
            let _ = ctx.neighbors().len();
        }
    }

    /// The pre-grid oracle, verbatim: a full scan over fresh positions with
    /// the same up/severed/range filters.
    fn brute_oracle(sim: &mut Simulator<(), Idle>, node: NodeId, now: SimTime) -> Vec<NodeId> {
        let p = sim.position_at(node, now);
        let mut out = Vec::new();
        for j in 0..sim.num_nodes() {
            if j == node || !sim.up[j] || sim.link_severed(node, j) {
                continue;
            }
            let pj = sim.position_at(j, now);
            if sim.radio.in_range(p, pj) {
                out.push(j);
            }
        }
        out
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// The spatial grid is an *index*, not a semantics change: at any
        /// point of a run with mobility, crashes/revivals, and severed
        /// links, grid-backed neighbour discovery returns exactly the
        /// brute-force oracle set, in the same (ascending) order.
        #[test]
        fn grid_neighbors_equal_brute_force_under_churn(
            seed in 0u64..1_000,
            n in 4usize..20,
            crashes in prop::collection::vec(
                (any::<prop::sample::Index>(), 1u64..150, 5u64..60), 0..4),
            severs in prop::collection::vec(
                (any::<prop::sample::Index>(), any::<prop::sample::Index>(), 1u64..150, 10u64..80),
                0..4),
        ) {
            // Dense-ish area relative to an 80 m range, fast waypoint
            // turnover so the run crosses many grid sweeps and cell moves.
            let radio = RadioConfig { range_m: 80.0, ..RadioConfig::default() };
            let mobility = MobilityConfig {
                width: 300.0,
                height: 300.0,
                pause: SimDuration::from_secs_f64(1.0),
                ..MobilityConfig::paper()
            };
            let mut sim: Simulator<(), Idle> = Simulator::new(radio, seed);
            for i in 0..n {
                let x = 300.0 * (i as f64 * 0.37).fract();
                let y = 300.0 * (i as f64 * 0.71).fract();
                sim.add_node(Pos::new(x, y), mobility, Idle, seed ^ 0xA5A5);
            }
            let mut plan = FaultPlan::new();
            for &(node, at, down) in &crashes {
                let node = node.index(n);
                plan = plan
                    .crash_at(node, SimTime::from_secs_f64(at as f64))
                    .revive_at(node, SimTime::from_secs_f64((at + down) as f64));
            }
            for &(a, b, from, len) in &severs {
                let (a, b) = (a.index(n), b.index(n));
                if a != b {
                    plan = plan.sever_link(
                        a,
                        b,
                        SimTime::from_secs_f64(from as f64),
                        SimTime::from_secs_f64((from + len) as f64),
                    );
                }
            }
            sim.install_fault_plan(&plan);
            // A steady event stream so sweeps and lazy positions are
            // exercised between checkpoints.
            for k in 0..200 {
                sim.schedule_app_timer(0, SimTime::from_secs_f64(k as f64), k);
            }

            let mut got = Vec::new();
            for checkpoint in [3.0, 17.0, 48.0, 90.0, 151.0, 199.0] {
                sim.run_until(SimTime::from_secs_f64(checkpoint));
                let now = sim.now();
                for i in 0..n {
                    sim.neighbors_into(i, now, &mut got);
                    let want = brute_oracle(&mut sim, i, now);
                    prop_assert_eq!(
                        &got, &want,
                        "node {} diverged at t={:?} (checkpoint {})", i, now, checkpoint
                    );
                    // Re-querying must be idempotent (pure index read).
                    let first = got.clone();
                    sim.neighbors_into(i, now, &mut got);
                    prop_assert_eq!(&got, &first);
                }
            }
        }
    }

    /// The gauge accessors read engine state without touching it: the
    /// in-flight count returns to zero once the air clears, and grid
    /// stats reflect the node layout.
    #[test]
    fn gauge_accessors_reflect_engine_state() {
        let mut sim: Simulator<(), Idle> = Simulator::new(RadioConfig::default(), 7);
        for x in [0.0, 100.0, 900.0] {
            sim.add_node(Pos::new(x, 0.0), MobilityConfig::frozen(), Idle, 9);
        }
        let (cells, max_bucket) = sim.grid_stats();
        assert_eq!(cells, 2, "two occupied cells: x in [0,250) and [750,1000)");
        assert_eq!(max_bucket, 2);
        sim.set_neighbor_mode(NeighborMode::Beacon {
            period: SimDuration::from_secs_f64(1.0),
            expiry: SimDuration::from_secs_f64(2.5),
        });
        // Stop between beacon ticks: transmissions from the last tick have
        // landed, nothing is mid-flight, and the pending count is exactly
        // the beacon chain.
        sim.run_until(SimTime::from_secs_f64(10.5));
        assert_eq!(sim.inflight_frames(), 0);
        assert_eq!(sim.pending_events(), 3);
        assert!(sim.wheel_occupied_slots() >= 1);
    }

    /// Beacon mode keeps `heard` sorted: the neighbour view needs no
    /// per-call sort and still expires entries.
    #[test]
    fn beacon_heard_vec_stays_sorted_and_expires() {
        let mut sim: Simulator<(), Idle> = Simulator::new(RadioConfig::default(), 3);
        sim.set_neighbor_mode(NeighborMode::Beacon {
            period: SimDuration::from_secs_f64(1.0),
            expiry: SimDuration::from_secs_f64(2.5),
        });
        for x in [0.0, 100.0, 200.0, 900.0] {
            sim.add_node(Pos::new(x, 0.0), MobilityConfig::frozen(), Idle, 5);
        }
        sim.run_until(SimTime::from_secs_f64(4.0));
        let now = sim.now();
        let mut nbrs = Vec::new();
        // Node 1 hears 0 and 2 (within 250 m); node 3 is isolated.
        sim.neighbors_into(1, now, &mut nbrs);
        assert_eq!(nbrs, vec![0, 2]);
        assert!(sim.nodes[1].heard.windows(2).all(|w| w[0].0 < w[1].0));
        sim.neighbors_into(3, now, &mut nbrs);
        assert!(nbrs.is_empty());
        // Far in the future every entry has expired.
        sim.neighbors_into(1, SimTime::from_secs_f64(1.0e6), &mut nbrs);
        assert!(nbrs.is_empty());
    }
}
