//! The discrete-event simulation engine: nodes, radio, AODV, and the
//! application layer, driven by one event queue.
//!
//! The engine owns every per-node component. Applications interact with the
//! world exclusively through a [`NodeCtx`] handed into their callbacks; the
//! context records commands (send, broadcast, timers) that the engine
//! executes after the callback returns, which keeps borrows simple and the
//! event order deterministic.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::aodv::{AodvConfig, AodvState, AodvTimer, LinkCmd};
use crate::events::EventQueue;
use crate::fault::{FaultAction, FaultPlan};
use crate::mobility::{MobilityConfig, MobilityState, Pos};
use crate::packet::{DataPacket, Frame, NodeId};
use crate::radio::RadioConfig;
use crate::time::{SimDuration, SimTime};
use crate::trace::{
    EventTrace, FrameTag, FrameTraceLog, LossCause, NetStats, QueryEvent, QueryId, QueryTraceLog,
    QueryTraceState, TraceEvent,
};

/// How nodes learn who their one-hop neighbours are.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum NeighborMode {
    /// Idealized oracle: `neighbors()` reflects true positions instantly
    /// (models perfect beaconing with zero overhead; the default).
    Oracle,
    /// Periodic HELLO beacons: each node broadcasts a tiny frame every
    /// `period`; a neighbour entry expires `expiry` after its last beacon.
    /// Costs real frames and energy, and neighbour views lag mobility —
    /// stale entries and late discoveries become possible, as in a real
    /// 802.11 MANET.
    Beacon {
        /// Beacon period.
        period: SimDuration,
        /// Entry lifetime after the last heard beacon.
        expiry: SimDuration,
    },
}

/// Metadata accompanying an application message delivery.
#[derive(Debug, Clone, Copy)]
pub struct MsgMeta {
    /// End-to-end source node.
    pub src: NodeId,
    /// Node the frame was physically received from (last hop).
    pub link_from: NodeId,
    /// `true` when the message arrived as a one-hop broadcast.
    pub broadcast: bool,
}

/// The application running on every node. One type per simulation;
/// per-node behaviour is data inside the implementor.
pub trait Application<P> {
    /// A routed unicast or one-hop broadcast arrived.
    fn on_message(&mut self, ctx: &mut NodeCtx<P>, meta: MsgMeta, payload: P);

    /// An application timer armed via [`NodeCtx::set_timer`] fired.
    fn on_timer(&mut self, ctx: &mut NodeCtx<P>, token: u64);

    /// A unicast previously submitted could not be delivered (route
    /// discovery exhausted its retries).
    fn on_delivery_failed(&mut self, _ctx: &mut NodeCtx<P>, _dst: NodeId, _payload: P) {}

    /// The node crashed (fault injection): discard volatile state. No
    /// context is available — a dead node cannot send or arm timers.
    /// Whatever the implementor keeps is, by definition, the state that
    /// survives the reboot (the device's storage partition).
    fn on_crash(&mut self) {}

    /// The node rebooted after a crash: re-arm periodic timers here. All
    /// timers armed before the crash were invalidated.
    fn on_revive(&mut self, _ctx: &mut NodeCtx<P>) {}
}

/// Commands an application can issue from inside a callback.
enum AppCmd<P> {
    Unicast { dst: NodeId, payload: P, bytes: usize },
    Broadcast { payload: P, bytes: usize },
    Timer { delay: SimDuration, token: u64 },
}

/// The application's window into the simulation during a callback.
pub struct NodeCtx<'a, P> {
    /// Current simulated time.
    pub now: SimTime,
    /// This node's id.
    pub id: NodeId,
    /// This node's current position.
    pub position: Pos,
    neighbors: &'a [NodeId],
    cmds: Vec<AppCmd<P>>,
    qtrace: Option<&'a mut QueryTraceState>,
}

impl<'a, P> NodeCtx<'a, P> {
    /// Nodes currently within radio range (idealized beaconing).
    pub fn neighbors(&self) -> &[NodeId] {
        self.neighbors
    }

    /// `true` when per-query tracing is enabled. Use to skip building
    /// expensive event payloads when nobody is listening.
    pub fn trace_enabled(&self) -> bool {
        self.qtrace.is_some()
    }

    /// Records a structured query-trace event at the current node and time.
    /// A no-op (one `Option` check) when tracing is disabled.
    pub fn trace(&mut self, query: Option<QueryId>, event: QueryEvent) {
        if let Some(qt) = self.qtrace.as_deref_mut() {
            qt.record(self.now, self.id, query, event);
        }
    }

    /// Sends `payload` to `dst` via AODV multi-hop routing. `bytes` is the
    /// payload's wire size.
    pub fn send_unicast(&mut self, dst: NodeId, payload: P, bytes: usize) {
        self.cmds.push(AppCmd::Unicast { dst, payload, bytes });
    }

    /// One-hop broadcast to every current neighbour (not routed, not
    /// retransmitted).
    pub fn broadcast(&mut self, payload: P, bytes: usize) {
        self.cmds.push(AppCmd::Broadcast { payload, bytes });
    }

    /// Arms an application timer delivering `token` after `delay`.
    pub fn set_timer(&mut self, delay: SimDuration, token: u64) {
        self.cmds.push(AppCmd::Timer { delay, token });
    }
}

enum Event<P> {
    Deliver { to: NodeId, link_from: NodeId, frame: Frame<P> },
    // Timers carry the arming node's epoch: a crash bumps the epoch, so
    // timers armed before it fire as no-ops — volatile state dies with
    // the node instead of resurrecting through the queue.
    AppTimer { node: NodeId, token: u64, epoch: u64 },
    AodvTimer { node: NodeId, timer: AodvTimer, epoch: u64 },
    Beacon { node: NodeId },
    Fault(FaultAction),
}

struct NodeEntry<P, A> {
    mobility: MobilityState,
    aodv: AodvState<P>,
    app: A,
    /// Beacon mode: neighbour id → last-heard time.
    heard: std::collections::HashMap<NodeId, SimTime>,
}

/// The simulator.
pub struct Simulator<P, A> {
    nodes: Vec<NodeEntry<P, A>>,
    queue: EventQueue<Event<P>>,
    radio: RadioConfig,
    rng: StdRng,
    stats: NetStats,
    /// Cached positions, refreshed at each event dispatch.
    positions: Vec<Pos>,
    /// Joules consumed by each node's radio (tx + rx).
    energy_j: Vec<f64>,
    /// Per-node up/down status (fault injection; all up by default).
    up: Vec<bool>,
    /// Per-node crash epoch; bumped on crash to invalidate stale timers.
    epochs: Vec<u64>,
    /// Links currently severed by a fault plan, as normalized (lo, hi) pairs.
    severed: std::collections::HashSet<(NodeId, NodeId)>,
    /// Extra per-frame loss probability from an active radio degradation.
    extra_loss: f64,
    neighbor_mode: NeighborMode,
    beacons_started: bool,
    trace: Option<EventTrace>,
    qtrace: Option<QueryTraceState>,
}

impl<P: Clone + 'static, A: Application<P>> Simulator<P, A> {
    /// Creates a simulator with the given radio model and RNG seed.
    pub fn new(radio: RadioConfig, seed: u64) -> Self {
        Simulator {
            nodes: Vec::new(),
            queue: EventQueue::new(),
            radio,
            rng: StdRng::seed_from_u64(seed),
            stats: NetStats::default(),
            positions: Vec::new(),
            energy_j: Vec::new(),
            up: Vec::new(),
            epochs: Vec::new(),
            severed: std::collections::HashSet::new(),
            extra_loss: 0.0,
            neighbor_mode: NeighborMode::Oracle,
            beacons_started: false,
            trace: None,
            qtrace: None,
        }
    }

    /// Enables the bounded event trace (see [`EventTrace`]).
    pub fn enable_trace(&mut self, capacity: usize) {
        self.trace = Some(EventTrace::new(capacity));
    }

    /// The event trace, when enabled.
    pub fn trace(&self) -> Option<&EventTrace> {
        self.trace.as_ref()
    }

    /// Takes the frame-level trace out of the engine as a plain log (for
    /// cross-checking against [`NetStats`]). Tracing stops.
    pub fn take_frame_trace(&mut self) -> Option<FrameTraceLog> {
        self.trace
            .take()
            .map(|t| FrameTraceLog { entries: t.entries().copied().collect(), dropped: t.dropped })
    }

    /// Enables the structured per-query trace: one bounded ring of
    /// `capacity` records per node (see [`QueryTraceState`]). Applications
    /// record events through [`NodeCtx::trace`]; the engine itself records
    /// crash/revive markers.
    pub fn enable_query_trace(&mut self, capacity: usize) {
        self.qtrace = Some(QueryTraceState::new(capacity));
    }

    /// The query-trace collector, when enabled.
    pub fn query_trace(&self) -> Option<&QueryTraceState> {
        self.qtrace.as_ref()
    }

    /// Stitches the per-node query-trace rings into one engine-ordered log,
    /// consuming the collector. Tracing stops.
    pub fn take_query_trace(&mut self) -> Option<QueryTraceLog> {
        self.qtrace.take().map(QueryTraceState::into_log)
    }

    /// Selects the neighbour-discovery mode (before running).
    pub fn set_neighbor_mode(&mut self, mode: NeighborMode) {
        self.neighbor_mode = mode;
    }

    /// Adds a node at `start`, returning its id. Mobility randomness is
    /// derived from `seed` and the node id, so node sets are reproducible.
    pub fn add_node(&mut self, start: Pos, mobility: MobilityConfig, app: A, seed: u64) -> NodeId {
        let id = self.nodes.len();
        self.nodes.push(NodeEntry {
            mobility: MobilityState::new(
                mobility,
                start,
                seed ^ (id as u64).wrapping_mul(0x9E3779B97F4A7C15),
            ),
            aodv: AodvState::new(id, AodvConfig::default()),
            app,
            heard: std::collections::HashMap::new(),
        });
        self.positions.push(start);
        self.energy_j.push(0.0);
        self.up.push(true);
        self.epochs.push(0);
        id
    }

    /// Schedules every event of `plan` into the queue. Call after adding
    /// all nodes and before (or between) `run_until` calls; event times
    /// must not lie in the past.
    ///
    /// # Panics
    /// Panics when the plan names a node the simulator does not have.
    pub fn install_fault_plan(&mut self, plan: &FaultPlan) {
        let check = |n: NodeId| {
            assert!(n < self.nodes.len(), "fault plan names unknown node {n}");
        };
        for ev in plan.events() {
            match ev.action {
                FaultAction::Crash(n) | FaultAction::Revive(n) => check(n),
                FaultAction::SeverLink(a, b) | FaultAction::RestoreLink(a, b) => {
                    check(a);
                    check(b);
                }
                FaultAction::DegradeRadio { .. } | FaultAction::RestoreRadio => {}
            }
            self.queue.schedule(ev.at, Event::Fault(ev.action));
        }
    }

    /// `true` when `node` is currently up (not crashed).
    pub fn is_up(&self, node: NodeId) -> bool {
        self.up[node]
    }

    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.queue.now()
    }

    /// Network statistics so far.
    pub fn stats(&self) -> &NetStats {
        &self.stats
    }

    /// Radio energy (joules) node `node` has consumed so far.
    pub fn energy_joules(&self, node: NodeId) -> f64 {
        self.energy_j[node]
    }

    /// Total radio energy (joules) across all nodes.
    pub fn total_energy_joules(&self) -> f64 {
        self.energy_j.iter().sum()
    }

    /// Immutable access to a node's application (for result collection).
    pub fn app(&self, node: NodeId) -> &A {
        &self.nodes[node].app
    }

    /// Mutable access to a node's application (test injection only; do not
    /// send from here — use timers).
    pub fn app_mut(&mut self, node: NodeId) -> &mut A {
        &mut self.nodes[node].app
    }

    /// Position of `node` at the current time.
    pub fn position(&mut self, node: NodeId) -> Pos {
        let now = self.queue.now();
        self.nodes[node].mobility.position_at(now)
    }

    /// Position of `node` at an arbitrary time `t` (not after the node's
    /// next waypoint draw would be needed *and* then re-queried in the
    /// past; the engine clock is monotone, so forward probes are safe).
    ///
    /// Uses the mobility model's non-mutating
    /// [`peek`](crate::mobility::MobilityState::peek) when `t` falls inside
    /// the node's current leg — the common case for high-frequency range
    /// probes — and only steps the model otherwise.
    pub fn position_at(&mut self, node: NodeId, t: SimTime) -> Pos {
        let m = &mut self.nodes[node].mobility;
        match m.peek(t) {
            Some(p) => p,
            None => m.position_at(t),
        }
    }

    /// Schedules an application timer for `node` at absolute time `at`.
    /// This is how external workloads (query issue times) enter the system.
    /// The timer is tagged with the node's current epoch: it is silently
    /// dropped if the node crashes before it fires.
    pub fn schedule_app_timer(&mut self, node: NodeId, at: SimTime, token: u64) {
        self.queue
            .schedule(at, Event::AppTimer { node, token, epoch: self.epochs[node] });
    }

    /// Runs until the queue is empty or the clock passes `horizon`.
    /// Returns the number of events processed.
    pub fn run_until(&mut self, horizon: SimTime) -> u64 {
        if !self.beacons_started {
            self.beacons_started = true;
            if let NeighborMode::Beacon { period, .. } = self.neighbor_mode {
                // Stagger initial beacons across one period.
                let n = self.nodes.len().max(1) as f64;
                for i in 0..self.nodes.len() {
                    let offset = period.mul_f64(i as f64 / n);
                    self.queue.schedule(self.queue.now() + offset, Event::Beacon { node: i });
                }
            }
        }
        let mut processed = 0;
        while let Some(at) = self.queue.peek_time() {
            if at > horizon {
                break;
            }
            let (now, ev) = self.queue.pop().expect("peeked");
            self.dispatch(now, ev);
            processed += 1;
        }
        processed
    }

    /// Runs until no events remain.
    pub fn run_to_completion(&mut self) -> u64 {
        self.run_until(SimTime(u64::MAX))
    }

    fn refresh_positions(&mut self, now: SimTime) {
        for (i, n) in self.nodes.iter_mut().enumerate() {
            self.positions[i] = n.mobility.position_at(now);
        }
    }

    fn link_key(a: NodeId, b: NodeId) -> (NodeId, NodeId) {
        (a.min(b), a.max(b))
    }

    fn link_severed(&self, a: NodeId, b: NodeId) -> bool {
        !self.severed.is_empty() && self.severed.contains(&Self::link_key(a, b))
    }

    fn neighbors_of(&self, node: NodeId) -> Vec<NodeId> {
        match self.neighbor_mode {
            NeighborMode::Oracle => {
                // The oracle reflects the physical truth: crashed nodes and
                // severed links are invisible, which is how routing observes
                // churn (forwarding toward a vanished neighbour trips the
                // AODV link-break path).
                let p = self.positions[node];
                (0..self.nodes.len())
                    .filter(|&j| {
                        j != node
                            && self.up[j]
                            && !self.link_severed(node, j)
                            && self.radio.in_range(p, self.positions[j])
                    })
                    .collect()
            }
            NeighborMode::Beacon { expiry, .. } => {
                // Beacon views lag reality on purpose: a crashed neighbour
                // stays listed until its entry expires, as it would in a
                // real 802.11 MANET.
                let now = self.queue.now();
                let mut out: Vec<NodeId> = self.nodes[node]
                    .heard
                    .iter()
                    .filter(|(_, &heard)| heard + expiry > now)
                    .map(|(&n, _)| n)
                    .collect();
                out.sort_unstable();
                out
            }
        }
    }

    fn dispatch(&mut self, now: SimTime, ev: Event<P>) {
        self.refresh_positions(now);
        match ev {
            Event::Deliver { to, link_from, frame } => {
                if !self.up[to] {
                    // Crashed mid-flight: the frame dies on a silent radio.
                    self.stats.frames_dropped_node_down += 1;
                    self.stats.frames_lost += 1;
                    self.trace_event(
                        now,
                        TraceEvent::FrameLost {
                            from: link_from,
                            tag: Self::tag_of(&frame),
                            cause: LossCause::NodeDown,
                        },
                    );
                    return;
                }
                self.trace_event(
                    now,
                    TraceEvent::FrameDelivered { to, from: link_from, tag: Self::tag_of(&frame) },
                );
                match frame {
                    Frame::Hello => {
                        self.nodes[to].heard.insert(link_from, now);
                    }
                    Frame::Bcast { src, payload, bytes: _ } => {
                        self.stats.app_broadcasts_received += 1;
                        let meta = MsgMeta { src, link_from, broadcast: true };
                        self.run_app(to, now, |app, ctx| app.on_message(ctx, meta, payload));
                    }
                    other => {
                        let is_nbr_list = self.neighbors_of(to);
                        let cmds = {
                            let is_neighbor = |n: NodeId| is_nbr_list.contains(&n);
                            self.nodes[to].aodv.on_frame(link_from, other, now, &is_neighbor)
                        };
                        self.execute_link_cmds(to, now, cmds);
                    }
                }
            }
            Event::AppTimer { node, token, epoch } => {
                if self.up[node] && epoch == self.epochs[node] {
                    self.run_app(node, now, |app, ctx| app.on_timer(ctx, token));
                }
            }
            Event::AodvTimer { node, timer, epoch } => {
                if self.up[node] && epoch == self.epochs[node] {
                    let cmds = self.nodes[node].aodv.on_timer(timer, now);
                    self.execute_link_cmds(node, now, cmds);
                }
            }
            Event::Beacon { node } => {
                // The beacon chain survives crashes (a down node just stays
                // silent), so beaconing resumes by itself after a revive.
                if self.up[node] {
                    self.transmit_broadcast(node, now, Frame::Hello);
                }
                if let NeighborMode::Beacon { period, .. } = self.neighbor_mode {
                    self.queue.schedule(now + period, Event::Beacon { node });
                }
            }
            Event::Fault(action) => self.apply_fault(now, action),
        }
    }

    fn apply_fault(&mut self, now: SimTime, action: FaultAction) {
        match action {
            FaultAction::Crash(n) => {
                if !self.up[n] {
                    return; // already down
                }
                self.up[n] = false;
                self.epochs[n] += 1;
                self.stats.node_crashes += 1;
                // Volatile state dies: routing tables, duplicate caches,
                // buffered packets, the beacon-heard map, and whatever the
                // application drops in its hook. The application object
                // itself (the storage partition) survives.
                self.nodes[n].heard.clear();
                self.nodes[n].aodv.reset();
                self.nodes[n].app.on_crash();
                self.trace_event(now, TraceEvent::NodeCrashed { node: n });
                // `on_crash` gets no ctx (a dead node cannot act), so the
                // engine records the terminal timeline marker itself.
                self.qtrace_record(now, n, QueryEvent::Crashed);
            }
            FaultAction::Revive(n) => {
                if self.up[n] {
                    return; // never crashed, or already revived
                }
                self.up[n] = true;
                self.stats.node_revivals += 1;
                self.trace_event(now, TraceEvent::NodeRevived { node: n });
                self.qtrace_record(now, n, QueryEvent::Revived);
                self.run_app(n, now, |app, ctx| app.on_revive(ctx));
            }
            FaultAction::SeverLink(a, b) => {
                self.severed.insert(Self::link_key(a, b));
            }
            FaultAction::RestoreLink(a, b) => {
                self.severed.remove(&Self::link_key(a, b));
            }
            FaultAction::DegradeRadio { extra_loss } => self.extra_loss = extra_loss,
            FaultAction::RestoreRadio => self.extra_loss = 0.0,
        }
    }

    /// Runs an application callback and then executes its queued commands.
    fn run_app<F>(&mut self, node: NodeId, now: SimTime, f: F)
    where
        F: FnOnce(&mut A, &mut NodeCtx<P>),
    {
        if !self.up[node] {
            return;
        }
        let neighbors = self.neighbors_of(node);
        let mut ctx = NodeCtx {
            now,
            id: node,
            position: self.positions[node],
            neighbors: &neighbors,
            cmds: Vec::new(),
            qtrace: self.qtrace.as_mut(),
        };
        // `ctx` borrows locals plus the `qtrace` field, so borrowing the
        // app out of `self.nodes` stays a disjoint field borrow.
        f(&mut self.nodes[node].app, &mut ctx);
        let cmds = ctx.cmds;
        for cmd in cmds {
            match cmd {
                AppCmd::Unicast { dst, payload, bytes } => {
                    self.stats.app_unicasts_submitted += 1;
                    let link = self.nodes[node].aodv.send(dst, payload, bytes, now);
                    self.execute_link_cmds(node, now, link);
                }
                AppCmd::Broadcast { payload, bytes } => {
                    self.stats.app_broadcasts_sent += 1;
                    let frame = Frame::Bcast { src: node, payload, bytes };
                    self.transmit_broadcast(node, now, frame);
                }
                AppCmd::Timer { delay, token } => {
                    self.queue.schedule(
                        now + delay,
                        Event::AppTimer { node, token, epoch: self.epochs[node] },
                    );
                }
            }
        }
    }

    fn execute_link_cmds(&mut self, node: NodeId, now: SimTime, cmds: Vec<LinkCmd<P>>) {
        for cmd in cmds {
            match cmd {
                LinkCmd::SendTo(nbr, frame) => self.transmit_unicast(node, nbr, now, frame),
                LinkCmd::Broadcast(frame) => self.transmit_broadcast(node, now, frame),
                LinkCmd::SetTimer(delay, timer) => {
                    self.queue.schedule(
                        now + delay,
                        Event::AodvTimer { node, timer, epoch: self.epochs[node] },
                    );
                }
                LinkCmd::DeliverUp(pkt) => {
                    self.stats.app_unicasts_delivered += 1;
                    let meta = MsgMeta { src: pkt.src, link_from: node, broadcast: false };
                    self.run_app(node, now, |app, ctx| app.on_message(ctx, meta, pkt.payload));
                }
                LinkCmd::DropFailed(pkt) => {
                    self.stats.app_unicasts_failed += 1;
                    let DataPacket { dst, payload, .. } = pkt;
                    self.run_app(node, now, |app, ctx| app.on_delivery_failed(ctx, dst, payload));
                }
            }
        }
    }

    /// Extra loss roll from an active radio degradation window.
    fn degrade_lost(&mut self) -> bool {
        self.extra_loss > 0.0 && self.rng.random_range(0.0..1.0) < self.extra_loss
    }

    fn transmit_unicast(&mut self, from: NodeId, to: NodeId, now: SimTime, frame: Frame<P>) {
        if !self.up[from] {
            return; // a dead node's queued commands transmit nothing
        }
        self.count_frame(&frame);
        self.trace_event(
            now,
            TraceEvent::FrameSent { from, tag: Self::tag_of(&frame), bytes: frame.bytes() },
        );
        self.energy_j[from] += self.radio.energy.tx_joules(frame.bytes());
        if self.link_severed(from, to) {
            self.stats.frames_blocked_link_down += 1;
            self.stats.frames_lost += 1;
            self.trace_lost(now, from, &frame, LossCause::LinkDown);
            return;
        }
        if !self
            .radio
            .frame_received(self.positions[from], self.positions[to], &mut self.rng)
            || self.radio.lost(&mut self.rng)
            || self.degrade_lost()
        {
            self.stats.frames_lost += 1;
            self.trace_lost(now, from, &frame, LossCause::Radio);
            return;
        }
        if !self.up[to] {
            // Transmitted into the void; receiver pays nothing.
            self.stats.frames_dropped_node_down += 1;
            self.stats.frames_lost += 1;
            self.trace_lost(now, from, &frame, LossCause::NodeDown);
            return;
        }
        self.energy_j[to] += self.radio.energy.rx_joules(frame.bytes());
        let delay = self.radio.tx_delay(frame.bytes(), &mut self.rng);
        self.queue.schedule(now + delay, Event::Deliver { to, link_from: from, frame });
    }

    fn transmit_broadcast(&mut self, from: NodeId, now: SimTime, frame: Frame<P>) {
        if !self.up[from] {
            return;
        }
        self.count_frame(&frame);
        self.trace_event(
            now,
            TraceEvent::FrameSent { from, tag: Self::tag_of(&frame), bytes: frame.bytes() },
        );
        // One transmission regardless of receiver count; every in-range
        // node pays reception.
        self.energy_j[from] += self.radio.energy.tx_joules(frame.bytes());
        let delay = self.radio.tx_delay(frame.bytes(), &mut self.rng);
        let p = self.positions[from];
        for to in 0..self.nodes.len() {
            if to == from || !self.radio.frame_received(p, self.positions[to], &mut self.rng) {
                continue;
            }
            // Per-receiver copy losses are accounted exactly like unicast
            // losses (counter + traced cause), so trace-derived loss counts
            // reconstruct `NetStats` regardless of frame kind.
            if self.link_severed(from, to) {
                self.stats.frames_blocked_link_down += 1;
                self.stats.frames_lost += 1;
                self.trace_lost(now, from, &frame, LossCause::LinkDown);
                continue;
            }
            if self.radio.lost(&mut self.rng) || self.degrade_lost() {
                self.stats.frames_lost += 1;
                self.trace_lost(now, from, &frame, LossCause::Radio);
                continue;
            }
            if !self.up[to] {
                self.stats.frames_dropped_node_down += 1;
                self.stats.frames_lost += 1;
                self.trace_lost(now, from, &frame, LossCause::NodeDown);
                continue;
            }
            self.energy_j[to] += self.radio.energy.rx_joules(frame.bytes());
            self.queue.schedule(
                now + delay,
                Event::Deliver { to, link_from: from, frame: frame.clone() },
            );
        }
    }

    fn count_frame(&mut self, frame: &Frame<P>) {
        self.stats.frames_sent += 1;
        self.stats.bytes_sent += frame.bytes() as u64;
        match frame {
            Frame::Aodv(_) => self.stats.aodv_frames += 1,
            Frame::Data(_) => self.stats.data_frames += 1,
            Frame::Bcast { .. } => self.stats.bcast_frames += 1,
            Frame::Hello => self.stats.hello_frames += 1,
        }
    }

    fn tag_of(frame: &Frame<P>) -> FrameTag {
        match frame {
            Frame::Aodv(_) => FrameTag::Aodv,
            Frame::Data(_) => FrameTag::Data,
            Frame::Bcast { .. } => FrameTag::Bcast,
            Frame::Hello => FrameTag::Hello,
        }
    }

    fn trace_event(&mut self, at: SimTime, ev: TraceEvent) {
        if let Some(t) = self.trace.as_mut() {
            t.record(at, ev);
        }
    }

    fn trace_lost(&mut self, at: SimTime, from: NodeId, frame: &Frame<P>, cause: LossCause) {
        self.trace_event(at, TraceEvent::FrameLost { from, tag: Self::tag_of(frame), cause });
    }

    /// Engine-side query-trace record (crash/revive markers carry no query).
    fn qtrace_record(&mut self, at: SimTime, node: NodeId, ev: QueryEvent) {
        if let Some(q) = self.qtrace.as_mut() {
            q.record(at, node, None, ev);
        }
    }
}
