//! Network-level counters for experiment accounting (the raw material for
//! the paper's Fig. 12 message counts and for sanity-checking the radio
//! model).

/// Aggregate counters maintained by the engine.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct NetStats {
    /// Frames handed to the radio (any kind, including lost ones).
    pub frames_sent: u64,
    /// Total bytes handed to the radio.
    pub bytes_sent: u64,
    /// AODV control frames (RREQ/RREP/RERR), originated or forwarded.
    pub aodv_frames: u64,
    /// Routed data frames (per hop).
    pub data_frames: u64,
    /// One-hop application broadcast frames.
    pub bcast_frames: u64,
    /// Hello beacon frames (beacon neighbour mode only).
    pub hello_frames: u64,
    /// Frame copies that failed to reach their receiver for any reason:
    /// range/fading/random loss, a severed link, or a down node. Each loss
    /// also bumps its cause-specific counter below (node-down, link-down),
    /// so `frames_lost - frames_dropped_node_down - frames_blocked_link_down`
    /// is the radio-only loss count.
    pub frames_lost: u64,
    /// Application unicasts submitted via [`NodeCtx::send_unicast`](crate::engine::NodeCtx::send_unicast).
    pub app_unicasts_submitted: u64,
    /// Application unicasts that reached their destination.
    pub app_unicasts_delivered: u64,
    /// Application unicasts that failed (no route after retries).
    pub app_unicasts_failed: u64,
    /// Application broadcasts submitted.
    pub app_broadcasts_sent: u64,
    /// Per-receiver deliveries of application broadcasts.
    pub app_broadcasts_received: u64,
    /// Node crashes injected by a fault plan.
    pub node_crashes: u64,
    /// Node reboots injected by a fault plan.
    pub node_revivals: u64,
    /// Frames addressed to (or arriving at) a crashed node.
    pub frames_dropped_node_down: u64,
    /// Frames blocked by a severed link.
    pub frames_blocked_link_down: u64,
    /// Frames the application delivered but refused to process — rejected
    /// by defensive decode or an active defense (rate limit, identity or
    /// sanity check, reputation isolation). Counted via
    /// [`NodeCtx::reject_frame`](crate::engine::NodeCtx::reject_frame) and
    /// reconciled against the trace's `AttackFrameDropped` events by
    /// zero-drift verification.
    pub app_frames_rejected: u64,
    /// Data packets a *relay* had to abandon: no route (and rediscovery,
    /// where attempted, exhausted its retries) or the hop cap tripped.
    /// The originator is not told — it isn't this node's message — so the
    /// sender's ARQ recovers; this counter plus the trace's
    /// `ForwardDropped` events keep the loss visible to zero-drift
    /// verification instead of silent.
    pub data_drops_forwarded: u64,
}

impl NetStats {
    /// Delivery ratio of application unicasts (1.0 when none were sent).
    pub fn unicast_delivery_ratio(&self) -> f64 {
        if self.app_unicasts_submitted == 0 {
            1.0
        } else {
            self.app_unicasts_delivered as f64 / self.app_unicasts_submitted as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delivery_ratio_defaults_to_one() {
        assert_eq!(NetStats::default().unicast_delivery_ratio(), 1.0);
    }

    #[test]
    fn delivery_ratio_counts() {
        let s = NetStats {
            app_unicasts_submitted: 4,
            app_unicasts_delivered: 3,
            ..NetStats::default()
        };
        assert_eq!(s.unicast_delivery_ratio(), 0.75);
    }
}

/// Kinds of traced events (compact, no payloads).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceEvent {
    /// A frame was handed to the radio.
    FrameSent {
        /// Transmitting node.
        from: usize,
        /// Frame kind tag (see [`FrameTag`]).
        tag: FrameTag,
        /// Bytes on the air.
        bytes: usize,
    },
    /// A frame arrived at a node.
    FrameDelivered {
        /// Receiving node.
        to: usize,
        /// Link-layer sender.
        from: usize,
        /// Frame kind tag.
        tag: FrameTag,
    },
    /// A frame was lost. Every lost frame copy is traced exactly once with
    /// the cause that killed it, so per-cause trace counts reconstruct the
    /// [`NetStats`] loss counters.
    FrameLost {
        /// Transmitting node.
        from: usize,
        /// Frame kind tag.
        tag: FrameTag,
        /// Why the frame never arrived.
        cause: LossCause,
    },
    /// A relay abandoned a data packet it was forwarding (no route after
    /// salvage, or hop cap) — the per-event twin of
    /// [`NetStats::data_drops_forwarded`].
    ForwardDropped {
        /// The relay that dropped the packet.
        at: usize,
        /// The packet's end-to-end source.
        src: usize,
        /// The packet's unreachable destination.
        dst: usize,
    },
    /// A fault plan crashed a node.
    NodeCrashed {
        /// The node that went down.
        node: usize,
    },
    /// A fault plan revived a node.
    NodeRevived {
        /// The node that came back up.
        node: usize,
    },
}

/// Why a traced frame was lost (see [`TraceEvent::FrameLost`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LossCause {
    /// Out of range, fading, or random radio loss (`NetStats::frames_lost`
    /// minus the two structural counters).
    Radio,
    /// The link was severed by a fault plan
    /// (`NetStats::frames_blocked_link_down`).
    LinkDown,
    /// The receiver was down at send or delivery time
    /// (`NetStats::frames_dropped_node_down`).
    NodeDown,
}

/// Which layer a traced frame belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FrameTag {
    /// AODV control.
    Aodv,
    /// Routed application data.
    Data,
    /// One-hop application broadcast.
    Bcast,
    /// Hello beacon.
    Hello,
}

/// A bounded ring buffer of recent simulator events, for post-mortem
/// debugging ("what did the radio do around t = 512 s?"). Disabled by
/// default; enable via `Simulator::enable_trace`.
#[derive(Debug)]
pub struct EventTrace {
    capacity: usize,
    entries: std::collections::VecDeque<(crate::time::SimTime, TraceEvent)>,
    /// Events dropped because the ring was full.
    pub dropped: u64,
}

impl EventTrace {
    /// A trace holding at most `capacity` events.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "trace capacity must be positive");
        EventTrace {
            capacity,
            entries: std::collections::VecDeque::with_capacity(capacity),
            dropped: 0,
        }
    }

    /// Records one event at `at`.
    pub fn record(&mut self, at: crate::time::SimTime, ev: TraceEvent) {
        if self.entries.len() == self.capacity {
            self.entries.pop_front();
            self.dropped += 1;
        }
        self.entries.push_back((at, ev));
    }

    /// Events currently retained, oldest first.
    pub fn entries(&self) -> impl Iterator<Item = &(crate::time::SimTime, TraceEvent)> {
        self.entries.iter()
    }

    /// Number of retained events.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Renders the retained events as one line per event.
    pub fn dump(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        for (at, ev) in &self.entries {
            let _ = writeln!(out, "{at} {ev:?}");
        }
        out
    }
}

#[cfg(test)]
mod trace_tests {
    use super::*;
    use crate::time::SimTime;

    #[test]
    fn ring_evicts_oldest() {
        let mut t = EventTrace::new(2);
        for i in 0..5u64 {
            t.record(
                SimTime(i),
                TraceEvent::FrameLost {
                    from: i as usize,
                    tag: FrameTag::Data,
                    cause: LossCause::Radio,
                },
            );
        }
        assert_eq!(t.len(), 2);
        assert_eq!(t.dropped, 3);
        let first = t.entries().next().unwrap();
        assert_eq!(first.0, SimTime(3), "oldest retained is the 4th event");
    }

    #[test]
    fn dump_renders_lines() {
        let mut t = EventTrace::new(4);
        t.record(
            SimTime(1_000_000),
            TraceEvent::FrameSent { from: 0, tag: FrameTag::Aodv, bytes: 44 },
        );
        t.record(
            SimTime(2_000_000),
            TraceEvent::FrameDelivered { to: 1, from: 0, tag: FrameTag::Aodv },
        );
        let d = t.dump();
        assert!(d.contains("1.000000s"));
        assert!(d.contains("FrameDelivered"));
        assert_eq!(d.lines().count(), 2);
    }

    #[test]
    #[should_panic(expected = "capacity")]
    fn zero_capacity_rejected() {
        EventTrace::new(0);
    }
}

/// Identifies one query across nodes: the originating device and its local
/// query counter. Mirrors the application layer's query key without the
/// engine depending on it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct QueryId {
    /// Originating node.
    pub origin: usize,
    /// Per-origin query counter.
    pub cnt: u8,
}

/// How a query ended, as seen by its originator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FinalizeKind {
    /// The completion rule fired (BF 80 % rule / DF token return).
    Completed,
    /// Timed out with no responses at all.
    TimedOutNoResponses,
    /// Timed out after partial responses.
    TimedOutPartial,
}

/// Why a device refused to process a delivered frame (DESIGN.md §11).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DropCause {
    /// Per-neighbour token bucket was empty.
    RateLimit,
    /// The frame's claimed identity contradicted the routing-layer source
    /// or named an impossible device id.
    Identity,
    /// The source had accumulated enough penalties to be isolated.
    Reputation,
    /// A reply carried tuples outside the plausible data domain.
    Sanity,
    /// Defensive decode: structurally invalid payload (non-finite
    /// coordinates/attributes, impossible field values).
    Malformed,
}

impl DropCause {
    /// Stable lowercase name used in traces and bench tables.
    pub fn name(self) -> &'static str {
        match self {
            DropCause::RateLimit => "rate_limit",
            DropCause::Identity => "identity",
            DropCause::Reputation => "reputation",
            DropCause::Sanity => "sanity",
            DropCause::Malformed => "malformed",
        }
    }
}

/// One structured protocol-level event in a query's life. Application code
/// records these through [`NodeCtx::trace`](crate::engine::NodeCtx::trace);
/// the engine itself records [`QueryEvent::Crashed`] / [`QueryEvent::Revived`]
/// (with no query id) when a fault plan fires.
///
/// Fields are all plain scalars so records stay `Copy` and comparable; the
/// per-cause / per-kind counts are cross-checked against `NetStats` and the
/// application's own counters by the zero-drift tests (drift = bug).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum QueryEvent {
    /// The originator issued a new query.
    Issued {
        /// Query radius in metres.
        radius_m: f64,
        /// Neighbours visible at issue time.
        neighbors: usize,
        /// Filter tuples attached to the outgoing query.
        filters: usize,
    },
    /// A flooding hop: the query was (re)broadcast to one-hop neighbours.
    Forwarded {
        /// Re-issue round the broadcast belongs to.
        round: u32,
        /// Neighbours visible at forward time.
        neighbors: usize,
        /// Serialized message bytes.
        bytes: usize,
    },
    /// A device computed its local skyline for the query.
    LocalSkyline {
        /// Unreduced local skyline size |SK_i|.
        unreduced: usize,
        /// Reply size after filtering |SK'_i|.
        reply: usize,
        /// `true` when the device's region missed the query entirely.
        skipped: bool,
    },
    /// A filter tuple was attached at the originator.
    FilterAttached {
        /// The filter's VDR volume.
        vdr: f64,
    },
    /// A relaying device upgraded the filter bank before forwarding.
    FilterUpgraded {
        /// Best VDR among the incoming filters (0 when none).
        old_vdr: f64,
        /// Best VDR among the outgoing filters.
        new_vdr: f64,
    },
    /// A reply (BF result) was handed to the routing layer.
    ReplySent {
        /// Destination (the originator).
        to: usize,
        /// Result tuples carried.
        tuples: usize,
        /// Serialized message bytes.
        bytes: usize,
        /// ARQ sequence number (0 when ARQ is disabled).
        seq: u64,
    },
    /// The originator accepted a reply from a fresh responder.
    ReplyAccepted {
        /// Responding device.
        from: usize,
        /// Result tuples carried.
        tuples: usize,
        /// The responder's unreduced local skyline size.
        unreduced: usize,
        /// `true` when the responder counts toward DRR (non-empty skyline).
        participated: bool,
        /// ARQ retries the reply needed end-to-end.
        retries: u32,
        /// ARQ sequence number of the accepted copy.
        seq: u64,
    },
    /// A duplicate reply or token transfer was suppressed.
    DuplicateSuppressed {
        /// Sender of the duplicate.
        from: usize,
        /// ARQ sequence number of the duplicate copy.
        seq: u64,
    },
    /// An ARQ timer fired and the message was retransmitted.
    ArqRetry {
        /// ARQ sequence number.
        seq: u64,
        /// Retry attempt number (1-based).
        attempt: u32,
        /// Serialized message bytes resent.
        bytes: usize,
    },
    /// ARQ gave up on a message after max retries.
    ArqExhausted {
        /// ARQ sequence number.
        seq: u64,
    },
    /// A DF token was handed to the routing layer.
    TokenSent {
        /// Next device on the walk.
        to: usize,
        /// Serialized token bytes.
        bytes: usize,
        /// `true` when backtracking along the walk path.
        backtrack: bool,
        /// ARQ sequence number of the transfer.
        seq: u64,
    },
    /// A DF token was salvaged around an unreachable device.
    TokenSalvaged {
        /// The device the walk routed around.
        dead: usize,
    },
    /// The routing layer reported a delivery failure to the application.
    DeliveryFailed {
        /// Unreachable destination.
        dst: usize,
    },
    /// The originator re-issued the query (BF re-flood round).
    Reissued {
        /// New round number.
        round: u32,
        /// Neighbours visible at re-issue time.
        neighbors: usize,
    },
    /// The originator closed the query (completion or timeout). Carries a
    /// copy of the scorecard fields so the trace alone reconstructs the
    /// query record.
    Finalized {
        /// How the query ended.
        outcome: FinalizeKind,
        /// Devices that responded (BF) or were visited (DF).
        responded: usize,
        /// Global skyline size reported.
        result_len: usize,
        /// ARQ retries accumulated from accepted replies/tokens.
        retries: u64,
        /// Duplicate replies/transfers suppressed for this query.
        duplicates: u64,
        /// Re-issue rounds used.
        reissues: u32,
        /// DRR Σ|SK_i| term.
        sum_unreduced: u64,
        /// DRR Σ|SK'_i| term.
        sum_sent: u64,
        /// DRR participant count.
        participants: u64,
    },
    /// A device installed (or renewed) a continuous-monitoring lease for
    /// the query (monitoring extension, DESIGN.md §9).
    Registered {
        /// Monitored range radius in metres.
        radius_m: f64,
        /// Lease time-to-live in seconds; the device drops the registration
        /// when no renewal arrives within this window.
        ttl_s: f64,
        /// Epoch refresh period in seconds.
        period_s: f64,
    },
    /// A device transmitted an epoch delta (or heartbeat) to the
    /// originator.
    DeltaSent {
        /// Destination (the originator).
        to: usize,
        /// Epoch the delta describes.
        epoch: u64,
        /// Tuples added to the device's local constrained skyline.
        adds: usize,
        /// Tuples removed from it.
        removes: usize,
        /// `true` for a no-change heartbeat (`adds == removes == 0`).
        heartbeat: bool,
        /// Serialized message bytes.
        bytes: usize,
        /// ARQ sequence number (0 when ARQ is disabled).
        seq: u64,
    },
    /// The originator folded a received delta into its live skyline.
    DeltaApplied {
        /// Contributing device.
        from: usize,
        /// Epoch the delta described.
        epoch: u64,
        /// Tuples added.
        adds: usize,
        /// Tuples removed.
        removes: usize,
        /// `true` for a no-change heartbeat.
        heartbeat: bool,
    },
    /// A device's monitoring lease ran out (no renewal within TTL) and the
    /// registration was dropped.
    LeaseExpired {
        /// Last epoch the device reported before expiry.
        epoch: u64,
    },
    /// A device dropped a registration on an explicit cancel from the
    /// originator.
    Cancelled {
        /// Last epoch the device reported before the cancel.
        epoch: u64,
    },
    /// An adversarial node transmitted an attack frame (fake query,
    /// poisoned reply, or forged-identity reply) — DESIGN.md §11.
    AttackFrameSent {
        /// Which attack behaviour produced the frame.
        kind: crate::fault::AttackKind,
        /// Serialized frame bytes.
        bytes: usize,
    },
    /// A device refused to process a delivered frame: defensive decode or
    /// an active defense dropped it. Always paired with a
    /// [`NetStats::app_frames_rejected`] bump.
    AttackFrameDropped {
        /// End-to-end source the frame claimed to come from.
        from: usize,
        /// Which check rejected it.
        cause: DropCause,
    },
    /// A defense penalised a peer; enough penalties isolate the offender
    /// from forwarding and reply acceptance.
    ReputationPenalty {
        /// The penalised peer.
        offender: usize,
        /// The offender's accumulated penalty count after this one.
        score: u64,
    },
    /// A filter tuple failed the carrier's sanity checks (out-of-domain
    /// attributes or impossible dominance) and was stripped before use.
    FilterRejected {
        /// One-hop/end-to-end source that shipped the filter.
        from: usize,
        /// The rejected filter's claimed VDR volume.
        vdr: f64,
    },
    /// The engine crashed this node (fault plan). Recorded with no query id.
    Crashed,
    /// The engine revived this node (fault plan). Recorded with no query id.
    Revived,
    /// The serving front end answered a query from a cached diagram cell
    /// (`dist::serve`, DESIGN §14). `node` is the serving originator.
    CacheHit {
        /// Snapshot epoch the answer was served from.
        epoch: u64,
        /// Staleness in epochs: snapshot epoch minus the cell's last
        /// answer refresh.
        age: u64,
        /// Skyline tuples in the served answer.
        tuples: usize,
    },
    /// The serving front end had no materialized cell and fell back to a
    /// real engine query, back-filling the diagram.
    CacheMiss {
        /// Snapshot epoch the cold compute ran against.
        epoch: u64,
        /// Skyline tuples in the computed answer.
        tuples: usize,
    },
    /// A site delta changed a materialized diagram cell's cached answer
    /// (the dominance-region intersection test fired and the skyline
    /// moved).
    CellInvalidated {
        /// Epoch of the delta that invalidated the cell.
        epoch: u64,
        /// Radius band index of the invalidated cell.
        band: usize,
    },
}

/// One recorded query-trace event: where, when, which query, what happened.
/// `seq` is a globally monotone sequence number assigned at record time, so
/// stitching per-node buffers back together recovers exact engine order.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QueryTraceRecord {
    /// Global record order (engine-assigned, gap-free until rings overflow).
    pub seq: u64,
    /// Virtual time of the event.
    pub at: crate::time::SimTime,
    /// Node the event happened on.
    pub node: usize,
    /// Query the event belongs to (`None` for crash/revive).
    pub query: Option<QueryId>,
    /// What happened.
    pub event: QueryEvent,
}

/// Per-node bounded ring of [`QueryTraceRecord`]s.
#[derive(Debug, Default)]
struct NodeTrace {
    entries: std::collections::VecDeque<QueryTraceRecord>,
    dropped: u64,
}

/// The per-query trace collector: one bounded ring per node plus a global
/// sequence counter. Installed into the engine next to [`NetStats`]; costs
/// one `Option` check when disabled.
#[derive(Debug)]
pub struct QueryTraceState {
    capacity: usize,
    nodes: Vec<NodeTrace>,
    next_seq: u64,
}

impl QueryTraceState {
    /// A collector whose per-node rings hold at most `capacity` records.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "query trace capacity must be positive");
        QueryTraceState { capacity, nodes: Vec::new(), next_seq: 0 }
    }

    /// Records one event into `node`'s ring, assigning the next global
    /// sequence number. Node buffers grow on demand.
    pub fn record(
        &mut self,
        at: crate::time::SimTime,
        node: usize,
        query: Option<QueryId>,
        event: QueryEvent,
    ) {
        if node >= self.nodes.len() {
            self.nodes.resize_with(node + 1, NodeTrace::default);
        }
        let seq = self.next_seq;
        self.next_seq += 1;
        let ring = &mut self.nodes[node];
        if ring.entries.len() == self.capacity {
            ring.entries.pop_front();
            ring.dropped += 1;
        }
        ring.entries.push_back(QueryTraceRecord { seq, at, node, query, event });
    }

    /// Total records evicted across all node rings.
    pub fn dropped(&self) -> u64 {
        self.nodes.iter().map(|n| n.dropped).sum()
    }

    /// Total records currently retained.
    pub fn len(&self) -> usize {
        self.nodes.iter().map(|n| n.entries.len()).sum()
    }

    /// `true` when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Stitches all node rings into one log ordered by global sequence
    /// number (= exact engine record order), consuming the collector.
    pub fn into_log(self) -> QueryTraceLog {
        let dropped = self.dropped();
        let mut records: Vec<QueryTraceRecord> =
            self.nodes.into_iter().flat_map(|n| n.entries).collect();
        records.sort_by_key(|r| r.seq);
        QueryTraceLog { records, dropped }
    }
}

/// A finished, stitched query trace: records in engine order plus the
/// overflow count (a nonzero `dropped` voids the zero-drift guarantees —
/// raise the per-node capacity).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct QueryTraceLog {
    /// All retained records, ordered by global sequence number.
    pub records: Vec<QueryTraceRecord>,
    /// Records evicted from full rings before collection.
    pub dropped: u64,
}

/// A captured copy of the frame-level [`EventTrace`], exported alongside a
/// query trace so frame counts can be cross-checked against [`NetStats`].
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FrameTraceLog {
    /// `(time, event)` pairs, oldest first.
    pub entries: Vec<(crate::time::SimTime, TraceEvent)>,
    /// Events evicted from the ring before collection.
    pub dropped: u64,
}

#[cfg(test)]
mod query_trace_tests {
    use super::*;
    use crate::time::SimTime;

    #[test]
    fn rings_are_per_node_and_bounded() {
        let mut q = QueryTraceState::new(2);
        let qid = QueryId { origin: 0, cnt: 0 };
        for i in 0..4u64 {
            q.record(SimTime(i), 0, Some(qid), QueryEvent::Crashed);
        }
        q.record(SimTime(9), 1, None, QueryEvent::Revived);
        assert_eq!(q.len(), 3, "node 0 capped at 2, node 1 holds 1");
        assert_eq!(q.dropped(), 2);
        let log = q.into_log();
        assert_eq!(log.dropped, 2);
        // Stitching orders by global seq across nodes.
        let seqs: Vec<u64> = log.records.iter().map(|r| r.seq).collect();
        assert_eq!(seqs, vec![2, 3, 4]);
        assert_eq!(log.records[2].node, 1);
        assert_eq!(log.records[2].query, None);
    }

    #[test]
    fn seq_recovers_engine_order_across_nodes() {
        let mut q = QueryTraceState::new(16);
        let qid = QueryId { origin: 3, cnt: 1 };
        q.record(
            SimTime(5),
            3,
            Some(qid),
            QueryEvent::Issued { radius_m: 100.0, neighbors: 2, filters: 1 },
        );
        q.record(
            SimTime(5),
            1,
            Some(qid),
            QueryEvent::LocalSkyline { unreduced: 4, reply: 2, skipped: false },
        );
        q.record(
            SimTime(6),
            3,
            Some(qid),
            QueryEvent::ReplyAccepted {
                from: 1,
                tuples: 2,
                unreduced: 4,
                participated: true,
                retries: 0,
                seq: 7,
            },
        );
        let log = q.into_log();
        assert_eq!(log.records.len(), 3);
        assert!(log.records.windows(2).all(|w| w[0].seq < w[1].seq));
        assert_eq!(log.records[0].node, 3);
        assert_eq!(log.records[1].node, 1);
    }

    #[test]
    #[should_panic(expected = "capacity")]
    fn zero_query_capacity_rejected() {
        QueryTraceState::new(0);
    }
}
