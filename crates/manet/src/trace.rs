//! Network-level counters for experiment accounting (the raw material for
//! the paper's Fig. 12 message counts and for sanity-checking the radio
//! model).

/// Aggregate counters maintained by the engine.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct NetStats {
    /// Frames handed to the radio (any kind, including lost ones).
    pub frames_sent: u64,
    /// Total bytes handed to the radio.
    pub bytes_sent: u64,
    /// AODV control frames (RREQ/RREP/RERR), originated or forwarded.
    pub aodv_frames: u64,
    /// Routed data frames (per hop).
    pub data_frames: u64,
    /// One-hop application broadcast frames.
    pub bcast_frames: u64,
    /// Hello beacon frames (beacon neighbour mode only).
    pub hello_frames: u64,
    /// Frames dropped by range or random loss.
    pub frames_lost: u64,
    /// Application unicasts submitted via [`NodeCtx::send_unicast`](crate::engine::NodeCtx::send_unicast).
    pub app_unicasts_submitted: u64,
    /// Application unicasts that reached their destination.
    pub app_unicasts_delivered: u64,
    /// Application unicasts that failed (no route after retries).
    pub app_unicasts_failed: u64,
    /// Application broadcasts submitted.
    pub app_broadcasts_sent: u64,
    /// Per-receiver deliveries of application broadcasts.
    pub app_broadcasts_received: u64,
    /// Node crashes injected by a fault plan.
    pub node_crashes: u64,
    /// Node reboots injected by a fault plan.
    pub node_revivals: u64,
    /// Frames addressed to (or arriving at) a crashed node.
    pub frames_dropped_node_down: u64,
    /// Frames blocked by a severed link.
    pub frames_blocked_link_down: u64,
}

impl NetStats {
    /// Delivery ratio of application unicasts (1.0 when none were sent).
    pub fn unicast_delivery_ratio(&self) -> f64 {
        if self.app_unicasts_submitted == 0 {
            1.0
        } else {
            self.app_unicasts_delivered as f64 / self.app_unicasts_submitted as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delivery_ratio_defaults_to_one() {
        assert_eq!(NetStats::default().unicast_delivery_ratio(), 1.0);
    }

    #[test]
    fn delivery_ratio_counts() {
        let s = NetStats {
            app_unicasts_submitted: 4,
            app_unicasts_delivered: 3,
            ..NetStats::default()
        };
        assert_eq!(s.unicast_delivery_ratio(), 0.75);
    }
}

/// Kinds of traced events (compact, no payloads).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceEvent {
    /// A frame was handed to the radio.
    FrameSent {
        /// Transmitting node.
        from: usize,
        /// Frame kind tag (see [`FrameTag`]).
        tag: FrameTag,
        /// Bytes on the air.
        bytes: usize,
    },
    /// A frame arrived at a node.
    FrameDelivered {
        /// Receiving node.
        to: usize,
        /// Link-layer sender.
        from: usize,
        /// Frame kind tag.
        tag: FrameTag,
    },
    /// A frame was lost (range, fading, or random loss).
    FrameLost {
        /// Transmitting node.
        from: usize,
        /// Frame kind tag.
        tag: FrameTag,
    },
    /// A fault plan crashed a node.
    NodeCrashed {
        /// The node that went down.
        node: usize,
    },
    /// A fault plan revived a node.
    NodeRevived {
        /// The node that came back up.
        node: usize,
    },
}

/// Which layer a traced frame belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrameTag {
    /// AODV control.
    Aodv,
    /// Routed application data.
    Data,
    /// One-hop application broadcast.
    Bcast,
    /// Hello beacon.
    Hello,
}

/// A bounded ring buffer of recent simulator events, for post-mortem
/// debugging ("what did the radio do around t = 512 s?"). Disabled by
/// default; enable via `Simulator::enable_trace`.
#[derive(Debug)]
pub struct EventTrace {
    capacity: usize,
    entries: std::collections::VecDeque<(crate::time::SimTime, TraceEvent)>,
    /// Events dropped because the ring was full.
    pub dropped: u64,
}

impl EventTrace {
    /// A trace holding at most `capacity` events.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "trace capacity must be positive");
        EventTrace {
            capacity,
            entries: std::collections::VecDeque::with_capacity(capacity),
            dropped: 0,
        }
    }

    /// Records one event at `at`.
    pub fn record(&mut self, at: crate::time::SimTime, ev: TraceEvent) {
        if self.entries.len() == self.capacity {
            self.entries.pop_front();
            self.dropped += 1;
        }
        self.entries.push_back((at, ev));
    }

    /// Events currently retained, oldest first.
    pub fn entries(&self) -> impl Iterator<Item = &(crate::time::SimTime, TraceEvent)> {
        self.entries.iter()
    }

    /// Number of retained events.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Renders the retained events as one line per event.
    pub fn dump(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        for (at, ev) in &self.entries {
            let _ = writeln!(out, "{at} {ev:?}");
        }
        out
    }
}

#[cfg(test)]
mod trace_tests {
    use super::*;
    use crate::time::SimTime;

    #[test]
    fn ring_evicts_oldest() {
        let mut t = EventTrace::new(2);
        for i in 0..5u64 {
            t.record(SimTime(i), TraceEvent::FrameLost { from: i as usize, tag: FrameTag::Data });
        }
        assert_eq!(t.len(), 2);
        assert_eq!(t.dropped, 3);
        let first = t.entries().next().unwrap();
        assert_eq!(first.0, SimTime(3), "oldest retained is the 4th event");
    }

    #[test]
    fn dump_renders_lines() {
        let mut t = EventTrace::new(4);
        t.record(
            SimTime(1_000_000),
            TraceEvent::FrameSent { from: 0, tag: FrameTag::Aodv, bytes: 44 },
        );
        t.record(
            SimTime(2_000_000),
            TraceEvent::FrameDelivered { to: 1, from: 0, tag: FrameTag::Aodv },
        );
        let d = t.dump();
        assert!(d.contains("1.000000s"));
        assert!(d.contains("FrameDelivered"));
        assert_eq!(d.lines().count(), 2);
    }

    #[test]
    #[should_panic(expected = "capacity")]
    fn zero_capacity_rejected() {
        EventTrace::new(0);
    }
}
