//! Virtual time for the discrete-event simulator.
//!
//! Time is kept in integer **microseconds** so event ordering is exact and
//! runs are bit-reproducible; helpers convert to and from seconds for
//! configuration and reporting.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// An instant of simulated time (µs since simulation start).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(pub u64);

/// A span of simulated time (µs).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(pub u64);

impl SimTime {
    /// Simulation start.
    pub const ZERO: SimTime = SimTime(0);

    /// Seconds since simulation start.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Instant at `secs` seconds.
    pub fn from_secs_f64(secs: f64) -> Self {
        assert!(secs >= 0.0 && secs.is_finite(), "invalid time {secs}");
        SimTime((secs * 1e6).round() as u64)
    }

    /// Duration since `earlier`; saturates at zero.
    pub fn since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }
}

impl SimDuration {
    /// Zero-length span.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Span of `secs` seconds.
    pub fn from_secs_f64(secs: f64) -> Self {
        assert!(secs >= 0.0 && secs.is_finite(), "invalid duration {secs}");
        SimDuration((secs * 1e6).round() as u64)
    }

    /// Span of `ms` milliseconds.
    pub fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1000)
    }

    /// Span of `us` microseconds.
    pub fn from_micros(us: u64) -> Self {
        SimDuration(us)
    }

    /// Whole microseconds in this span.
    pub fn as_micros(self) -> u64 {
        self.0
    }

    /// Seconds in this span.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Scales the span by a non-negative factor.
    pub fn mul_f64(self, k: f64) -> Self {
        assert!(k >= 0.0 && k.is_finite());
        SimDuration((self.0 as f64 * k).round() as u64)
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, d: SimDuration) -> SimTime {
        SimTime(self.0 + d.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, d: SimDuration) {
        self.0 += d.0;
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, o: SimDuration) -> SimDuration {
        SimDuration(self.0 + o.0)
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, o: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(o.0))
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversion_round_trip() {
        let t = SimTime::from_secs_f64(1.5);
        assert_eq!(t.0, 1_500_000);
        assert_eq!(t.as_secs_f64(), 1.5);
    }

    #[test]
    fn arithmetic() {
        let t = SimTime::from_secs_f64(1.0) + SimDuration::from_millis(250);
        assert_eq!(t.as_secs_f64(), 1.25);
        assert_eq!(t.since(SimTime::from_secs_f64(0.5)).as_secs_f64(), 0.75);
        // Saturating difference.
        assert_eq!(SimTime::ZERO.since(t), SimDuration::ZERO);
    }

    #[test]
    fn duration_scaling() {
        let d = SimDuration::from_secs_f64(2.0).mul_f64(0.25);
        assert_eq!(d.as_secs_f64(), 0.5);
    }

    #[test]
    #[should_panic(expected = "invalid time")]
    fn negative_time_rejected() {
        SimTime::from_secs_f64(-1.0);
    }

    #[test]
    fn display_formats() {
        assert_eq!(format!("{}", SimTime::from_secs_f64(2.0)), "2.000000s");
    }
}
