//! Ad hoc On-Demand Distance Vector routing — the RFC 3561 core, which is
//! the wireless routing protocol the paper's simulations use (Table 7).
//!
//! Implemented behaviour:
//!
//! * on-demand route discovery: RREQ flooding with (origin, rreq_id)
//!   duplicate suppression (TTL'd per RFC PATH_DISCOVERY_TIME),
//!   reverse-route setup at every forwarder, RREP unicast back along the
//!   reverse path (destination-only reply);
//! * destination sequence numbers with freshest-route-wins updates and
//!   the §6.2 unknown-sequence-number distinction, so opportunistic
//!   routes (overheard neighbours, application-primed reply paths,
//!   gratuitous refresh from forwarded data) never downgrade a known
//!   `dst_seq`;
//! * hop-count metric;
//! * active-route timeout with lazy expiry;
//! * RREQ retries with exponential back-off, then delivery-failure
//!   reporting to the application;
//! * link-break handling at forwarding time: route invalidation with a
//!   §6.11 sequence bump, a one-hop RERR broadcast so neighbours drop
//!   the stale route too, and salvage — the in-flight packet is
//!   re-buffered behind a targeted rediscovery instead of dropped;
//! * application route priming ([`AodvState::offer_app_route`]): upper
//!   layers that flood their own queries can install the flood tree as
//!   reverse routes, RREQ-style, so replies find warm paths and RREQ
//!   floods become the churn-only fallback.
//!
//! Omitted (not needed for the paper's workloads): intermediate-node
//! RREP replies, precursor lists with targeted RERR delivery, local
//! repair, and hello messages (neighbourhood sensing is physical — the
//! engine answers "is X in range" directly, modelling an idealized
//! beacon protocol).
//!
//! The state machine is engine-agnostic: every handler returns
//! [`LinkCmd`]s that the engine turns into frames, timers, and
//! application up-calls. That keeps AODV unit-testable without a radio.

use std::collections::HashMap;

use crate::packet::{AodvMessage, DataPacket, Frame, NodeId};
use crate::time::{SimDuration, SimTime};

/// Forwarding cap for data packets: a salvaged packet that keeps finding
/// new routes must still die eventually (the IP TTL's job in real AODV).
const MAX_DATA_HOPS: u32 = 64;

/// AODV tunables.
#[derive(Debug, Clone, Copy)]
pub struct AodvConfig {
    /// How long a route stays valid after its last use.
    pub active_route_timeout: SimDuration,
    /// Time to wait for an RREP before retrying the flood.
    pub rreq_timeout: SimDuration,
    /// Total RREQ attempts before giving up (RFC: RREQ_RETRIES + 1 = 3).
    pub max_rreq_attempts: u32,
    /// How long an (origin, rreq_id) pair stays in the duplicate cache
    /// (RFC 3561 PATH_DISCOVERY_TIME = 2 × NET_TRAVERSAL_TIME = 5.6 s).
    pub path_discovery_time: SimDuration,
}

impl Default for AodvConfig {
    fn default() -> Self {
        AodvConfig {
            active_route_timeout: SimDuration::from_secs_f64(3.0),
            rreq_timeout: SimDuration::from_millis(200),
            max_rreq_attempts: 3,
            path_discovery_time: SimDuration::from_secs_f64(5.6),
        }
    }
}

/// A routing-table entry.
#[derive(Debug, Clone, Copy)]
struct Route {
    next_hop: NodeId,
    hop_count: u32,
    dst_seq: u64,
    /// RFC 3561 §6.2: is `dst_seq` a real destination sequence number
    /// (learned from an RREQ/RREP/RERR) or a placeholder? Opportunistic
    /// updates may replace the path of an entry but never erase a known
    /// sequence number — that floor is what keeps stale RREPs out.
    seq_known: bool,
    expires: SimTime,
    valid: bool,
}

/// AODV timers (scheduled through the engine).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AodvTimer {
    /// RREQ for `dst` may have been lost; `attempt` floods done so far.
    RreqTimeout {
        /// Destination being searched.
        dst: NodeId,
        /// Attempts already made.
        attempt: u32,
    },
}

/// What the engine should do on behalf of this node.
#[derive(Debug)]
pub enum LinkCmd<P> {
    /// Transmit a frame to a specific neighbour.
    SendTo(NodeId, Frame<P>),
    /// Transmit a frame to everyone in range.
    Broadcast(Frame<P>),
    /// Arm an AODV timer.
    SetTimer(SimDuration, AodvTimer),
    /// The packet reached this node: hand it to the application.
    DeliverUp(DataPacket<P>),
    /// The packet is undeliverable: tell the application it failed.
    DropFailed(DataPacket<P>),
    /// A packet this node was only *forwarding* is undeliverable. The
    /// engine counts it (zero-drift accounting) but must not run the
    /// originator's failure callback here — this node does not own the
    /// message; the sender's own ARQ/timeout machinery recovers.
    DropForwarded(DataPacket<P>),
}

/// Per-node AODV state.
#[derive(Debug)]
pub struct AodvState<P> {
    me: NodeId,
    cfg: AodvConfig,
    seq: u64,
    next_rreq_id: u64,
    next_packet_id: u64,
    routes: HashMap<NodeId, Route>,
    /// RREQ duplicate cache: (origin, rreq_id) → expiry. Entries outlive
    /// their usefulness by at most one purge period, so the cache is
    /// bounded by the RREQ arrival rate × 2 × PATH_DISCOVERY_TIME
    /// instead of growing for the life of the node.
    seen_rreq: HashMap<(NodeId, u64), SimTime>,
    /// Next deterministic sweep of expired `seen_rreq` entries.
    seen_rreq_purge_at: SimTime,
    /// Packets waiting for a route, per destination.
    pending: HashMap<NodeId, Vec<DataPacket<P>>>,
    /// Statistics: control messages originated or forwarded by this node.
    pub control_messages: u64,
}

impl<P: Clone> AodvState<P> {
    /// Fresh state for node `me`.
    pub fn new(me: NodeId, cfg: AodvConfig) -> Self {
        AodvState {
            me,
            cfg,
            seq: 0,
            next_rreq_id: 0,
            next_packet_id: 0,
            routes: HashMap::new(),
            seen_rreq: HashMap::new(),
            seen_rreq_purge_at: SimTime::ZERO,
            pending: HashMap::new(),
            control_messages: 0,
        }
    }

    /// Clears volatile routing state after a crash: routes, the RREQ
    /// duplicate cache, and packets buffered for discovery all die with
    /// the node. Sequence numbers and RREQ ids survive the reboot (RFC
    /// 3561 §6.1 recommends persisting them so freshness comparisons stay
    /// monotonic — resetting them would get this node's post-reboot RREQs
    /// suppressed by neighbours' duplicate caches).
    pub fn reset(&mut self) {
        self.routes.clear();
        self.seen_rreq.clear();
        self.pending.clear();
    }

    /// Does this node currently hold a live route to `dst`?
    pub fn has_route(&self, dst: NodeId, now: SimTime) -> bool {
        self.routes.get(&dst).is_some_and(|r| r.valid && r.expires > now)
    }

    /// Next hop toward `dst`, when a live route exists.
    pub fn next_hop(&self, dst: NodeId, now: SimTime) -> Option<NodeId> {
        let mut span = sim_obs::span!("aodv::route_lookup");
        span.add_units(1);
        self.routes.get(&dst).filter(|r| r.valid && r.expires > now).map(|r| r.next_hop)
    }

    fn refresh(&mut self, dst: NodeId, now: SimTime) {
        if let Some(r) = self.routes.get_mut(&dst) {
            r.expires = now + self.cfg.active_route_timeout;
        }
    }

    /// Installs/updates a route carrying a *known* destination sequence
    /// number (from an RREQ origin_seq or an RREP dst_seq). Freshness
    /// rules per RFC 3561 §6.2: higher seq always wins; an equal seq wins
    /// only when the existing entry is dead or the new path is shorter; a
    /// *lower* seq never replaces a known one — even when the existing
    /// entry is expired or invalidated, its sequence number remains the
    /// floor a stale RREP must beat.
    fn offer_route(
        &mut self,
        dst: NodeId,
        next_hop: NodeId,
        hop_count: u32,
        dst_seq: u64,
        now: SimTime,
    ) {
        if dst == self.me {
            return;
        }
        let expires = now + self.cfg.active_route_timeout;
        let candidate =
            Route { next_hop, hop_count, dst_seq, seq_known: true, expires, valid: true };
        match self.routes.get_mut(&dst) {
            Some(r) if r.seq_known => {
                let alive = r.valid && r.expires > now;
                if dst_seq > r.dst_seq
                    || (dst_seq == r.dst_seq && (!alive || hop_count < r.hop_count))
                {
                    *r = candidate;
                } else if dst_seq == r.dst_seq && next_hop == r.next_hop {
                    // Same information from the same path: keep it warm.
                    r.expires = expires;
                }
            }
            Some(r) => *r = candidate, // known seq beats a placeholder
            None => {
                self.routes.insert(dst, candidate);
            }
        }
    }

    /// Installs/updates a route learned *without* a destination sequence
    /// number: an overheard neighbour, an application-primed reply path,
    /// or gratuitous refresh from forwarded data. These may re-point or
    /// revive an entry but always carry the old `dst_seq` forward, so a
    /// later stale RREP still has to beat the real floor.
    fn offer_unknown_seq(&mut self, dst: NodeId, next_hop: NodeId, hop_count: u32, now: SimTime) {
        if dst == self.me {
            return;
        }
        let expires = now + self.cfg.active_route_timeout;
        match self.routes.get_mut(&dst) {
            Some(r) if r.valid && r.expires > now => {
                if next_hop == r.next_hop {
                    r.expires = expires;
                    r.hop_count = r.hop_count.min(hop_count);
                } else if hop_count < r.hop_count {
                    r.next_hop = next_hop;
                    r.hop_count = hop_count;
                    r.expires = expires;
                }
            }
            Some(r) => {
                // Dead entry: revive through the new path, keeping the
                // last known sequence number.
                r.next_hop = next_hop;
                r.hop_count = hop_count;
                r.expires = expires;
                r.valid = true;
            }
            None => {
                self.routes.insert(
                    dst,
                    Route {
                        next_hop,
                        hop_count,
                        dst_seq: 0,
                        seq_known: false,
                        expires,
                        valid: true,
                    },
                );
            }
        }
    }

    /// Application route priming: the upper layer saw traffic from `dst`
    /// arriving via neighbour `via` (`hops` hops out) — typically while
    /// relaying its own query flood — and installs the reverse path so
    /// replies skip route discovery. RREQ-style reverse-route setup, but
    /// driven by application broadcasts the AODV layer never parses.
    pub fn offer_app_route(&mut self, dst: NodeId, via: NodeId, hops: u32, now: SimTime) {
        self.offer_unknown_seq(dst, via, hops.max(1), now);
    }

    /// Is this (origin, rreq_id) flood already in the duplicate cache?
    /// Inserts/refreshes the entry either way, and sweeps expired entries
    /// at a deterministic cadence so the cache stays bounded.
    fn check_seen_rreq(&mut self, origin: NodeId, rreq_id: u64, now: SimTime) -> bool {
        if now >= self.seen_rreq_purge_at {
            self.seen_rreq.retain(|_, &mut expiry| expiry > now);
            self.seen_rreq_purge_at = now + self.cfg.path_discovery_time;
        }
        let expiry = now + self.cfg.path_discovery_time;
        match self.seen_rreq.insert((origin, rreq_id), expiry) {
            Some(prev) => prev > now, // expired entries do not suppress
            None => false,
        }
    }

    /// Application entry point: send `payload` of `bytes` bytes to `dst`.
    pub fn send(&mut self, dst: NodeId, payload: P, bytes: usize, now: SimTime) -> Vec<LinkCmd<P>> {
        let mut span = sim_obs::span!("aodv::send");
        span.add_bytes(bytes as u64);
        let pkt =
            DataPacket { src: self.me, dst, id: self.next_packet_id, hops: 0, payload, bytes };
        self.next_packet_id += 1;
        if dst == self.me {
            return vec![LinkCmd::DeliverUp(pkt)];
        }
        if let Some(nh) = self.next_hop(dst, now) {
            self.refresh(dst, now);
            return vec![LinkCmd::SendTo(nh, Frame::Data(pkt))];
        }
        // No route: buffer and (maybe) start discovery.
        let discovering = self.pending.contains_key(&dst);
        self.pending.entry(dst).or_default().push(pkt);
        if discovering {
            return Vec::new();
        }
        self.start_discovery(dst, 1, now)
    }

    fn start_discovery(&mut self, dst: NodeId, attempt: u32, now: SimTime) -> Vec<LinkCmd<P>> {
        self.seq += 1;
        let rreq_id = self.next_rreq_id;
        self.next_rreq_id += 1;
        self.seen_rreq.insert((self.me, rreq_id), now + self.cfg.path_discovery_time);
        self.control_messages += 1;
        let msg =
            AodvMessage::Rreq { rreq_id, origin: self.me, origin_seq: self.seq, dst, hop_count: 0 };
        // Exponential back-off per RFC (binary, capped by attempts).
        let timeout = self.cfg.rreq_timeout.mul_f64(f64::from(1 << (attempt - 1).min(4)));
        vec![
            LinkCmd::Broadcast(Frame::Aodv(msg)),
            LinkCmd::SetTimer(timeout, AodvTimer::RreqTimeout { dst, attempt }),
        ]
    }

    /// Handles a received frame. `is_neighbor` answers whether a node is
    /// currently within radio range (idealized beaconing).
    pub fn on_frame(
        &mut self,
        link_from: NodeId,
        frame: Frame<P>,
        now: SimTime,
        is_neighbor: &dyn Fn(NodeId) -> bool,
    ) -> Vec<LinkCmd<P>> {
        let mut span = sim_obs::span!("aodv::on_frame");
        span.add_bytes(frame.bytes() as u64);
        span.add_units(1);
        // Hearing any frame from a neighbour is evidence of a 1-hop route.
        self.offer_unknown_seq(link_from, link_from, 1, now);
        match frame {
            Frame::Aodv(msg) => self.on_aodv(link_from, msg, now),
            Frame::Data(pkt) => self.on_data(link_from, pkt, now, is_neighbor),
            Frame::Bcast { .. } | Frame::Hello => {
                unreachable!("broadcasts and beacons are delivered by the engine, not AODV")
            }
        }
    }

    fn on_aodv(&mut self, from: NodeId, msg: AodvMessage, now: SimTime) -> Vec<LinkCmd<P>> {
        match msg {
            AodvMessage::Rreq { rreq_id, origin, origin_seq, dst, hop_count } => {
                if origin == self.me || self.check_seen_rreq(origin, rreq_id, now) {
                    return Vec::new(); // my own flood, or already processed
                }
                // Reverse route toward the origin.
                self.offer_route(origin, from, hop_count + 1, origin_seq, now);
                if dst == self.me {
                    // Destination replies. Bump own seq (RFC §6.6.1).
                    self.seq = self.seq.max(origin_seq) + 1;
                    self.control_messages += 1;
                    let rrep =
                        AodvMessage::Rrep { origin, dst: self.me, dst_seq: self.seq, hop_count: 0 };
                    return vec![LinkCmd::SendTo(from, Frame::Aodv(rrep))];
                }
                self.control_messages += 1;
                let fwd = AodvMessage::Rreq {
                    rreq_id,
                    origin,
                    origin_seq,
                    dst,
                    hop_count: hop_count + 1,
                };
                vec![LinkCmd::Broadcast(Frame::Aodv(fwd))]
            }
            AodvMessage::Rrep { origin, dst, dst_seq, hop_count } => {
                // Forward route toward the replying destination.
                self.offer_route(dst, from, hop_count + 1, dst_seq, now);
                if origin == self.me {
                    // Discovery finished: flush buffered packets.
                    return self.flush_pending(dst, now);
                }
                // Relay the RREP along the reverse route.
                match self.next_hop(origin, now) {
                    Some(nh) => {
                        self.control_messages += 1;
                        let fwd =
                            AodvMessage::Rrep { origin, dst, dst_seq, hop_count: hop_count + 1 };
                        vec![LinkCmd::SendTo(nh, Frame::Aodv(fwd))]
                    }
                    None => Vec::new(), // reverse route evaporated; flood will retry
                }
            }
            AodvMessage::Rerr { dst, dst_seq } => {
                // Invalidate our route if it goes through the sender.
                if let Some(r) = self.routes.get_mut(&dst) {
                    if r.valid && r.next_hop == from && r.dst_seq <= dst_seq {
                        r.valid = false;
                    }
                }
                Vec::new()
            }
        }
    }

    fn on_data(
        &mut self,
        link_from: NodeId,
        mut pkt: DataPacket<P>,
        now: SimTime,
        is_neighbor: &dyn Fn(NodeId) -> bool,
    ) -> Vec<LinkCmd<P>> {
        // Gratuitous-RREP-style refresh: the packet's journey so far is a
        // working reverse path toward its source.
        pkt.hops += 1;
        self.offer_unknown_seq(pkt.src, link_from, pkt.hops, now);
        if pkt.dst == self.me {
            return vec![LinkCmd::DeliverUp(pkt)];
        }
        if pkt.hops >= MAX_DATA_HOPS {
            // Routing-loop fuse (IP TTL in real AODV).
            return vec![self.drop_at_relay(pkt)];
        }
        // Forward along the route; detect broken links at forwarding time
        // (modelling link-layer feedback).
        if let Some(nh) = self.next_hop(pkt.dst, now) {
            if is_neighbor(nh) {
                self.refresh(pkt.dst, now);
                return vec![LinkCmd::SendTo(nh, Frame::Data(pkt))];
            }
            // Link break: invalidate with a bumped sequence number (RFC
            // §6.11) so the RERR also kills neighbours' equally-fresh
            // copies of the route, then salvage the packet behind a
            // targeted rediscovery instead of dropping it.
            let mut cmds = vec![self.break_route(pkt.dst, now)];
            let dst = pkt.dst;
            let discovering = self.pending.contains_key(&dst);
            self.pending.entry(dst).or_default().push(pkt);
            if !discovering {
                cmds.extend(self.start_discovery(dst, 1, now));
            }
            return cmds;
        }
        // No route at an intermediate hop (expired underway): tell the
        // neighbourhood and surface the drop instead of losing the packet
        // silently.
        let mut cmds = Vec::new();
        if let Some(r) = self.routes.get_mut(&pkt.dst) {
            if r.seq_known {
                r.dst_seq += 1;
            }
            let dst_seq = r.dst_seq;
            self.control_messages += 1;
            cmds.push(LinkCmd::Broadcast(Frame::Aodv(AodvMessage::Rerr { dst: pkt.dst, dst_seq })));
        }
        cmds.push(self.drop_at_relay(pkt));
        cmds
    }

    /// Invalidates the route to `dst` after link-layer failure, bumping
    /// its sequence number (RFC 3561 §6.11), and builds the RERR
    /// broadcast advertising the bumped number.
    fn break_route(&mut self, dst: NodeId, _now: SimTime) -> LinkCmd<P> {
        let r = self.routes.get_mut(&dst).expect("break_route follows next_hop()");
        r.valid = false;
        if r.seq_known {
            r.dst_seq += 1;
        }
        let dst_seq = r.dst_seq;
        self.control_messages += 1;
        LinkCmd::Broadcast(Frame::Aodv(AodvMessage::Rerr { dst, dst_seq }))
    }

    /// The undeliverable-packet command for this node: the originator
    /// gets the failure callback, a mere relay only gets it counted.
    fn drop_at_relay(&self, pkt: DataPacket<P>) -> LinkCmd<P> {
        if pkt.src == self.me {
            LinkCmd::DropFailed(pkt)
        } else {
            LinkCmd::DropForwarded(pkt)
        }
    }

    /// Handles an AODV timer.
    pub fn on_timer(&mut self, timer: AodvTimer, now: SimTime) -> Vec<LinkCmd<P>> {
        match timer {
            AodvTimer::RreqTimeout { dst, attempt } => {
                if self.has_route(dst, now) || !self.pending.contains_key(&dst) {
                    return Vec::new(); // discovery succeeded (or nothing waits)
                }
                if attempt < self.cfg.max_rreq_attempts {
                    return self.start_discovery(dst, attempt + 1, now);
                }
                // Give up: fail own packets to the application, count
                // salvaged third-party ones.
                let pkts = self.pending.remove(&dst).unwrap_or_default();
                pkts.into_iter().map(|p| self.drop_at_relay(p)).collect()
            }
        }
    }

    fn flush_pending(&mut self, dst: NodeId, now: SimTime) -> Vec<LinkCmd<P>> {
        let Some(pkts) = self.pending.remove(&dst) else {
            return Vec::new();
        };
        let Some(nh) = self.next_hop(dst, now) else {
            // Route vanished between RREP receipt and flush; re-buffer.
            self.pending.insert(dst, pkts);
            return Vec::new();
        };
        self.refresh(dst, now);
        pkts.into_iter().map(|p| LinkCmd::SendTo(nh, Frame::Data(p))).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn state(me: NodeId) -> AodvState<u32> {
        AodvState::new(me, AodvConfig::default())
    }

    const ALWAYS: fn(NodeId) -> bool = |_| true;
    const NEVER: fn(NodeId) -> bool = |_| false;

    #[test]
    fn send_without_route_floods_rreq() {
        let mut a = state(0);
        let cmds = a.send(5, 42, 100, SimTime::ZERO);
        assert!(matches!(
            cmds[0],
            LinkCmd::Broadcast(Frame::Aodv(AodvMessage::Rreq { dst: 5, .. }))
        ));
        assert!(matches!(
            cmds[1],
            LinkCmd::SetTimer(_, AodvTimer::RreqTimeout { dst: 5, attempt: 1 })
        ));
    }

    #[test]
    fn second_send_while_discovering_only_buffers() {
        let mut a = state(0);
        a.send(5, 1, 10, SimTime::ZERO);
        let cmds = a.send(5, 2, 10, SimTime::ZERO);
        assert!(cmds.is_empty(), "no second flood while one is outstanding");
    }

    #[test]
    fn self_send_delivers_up() {
        let mut a = state(3);
        let cmds = a.send(3, 9, 10, SimTime::ZERO);
        assert!(matches!(&cmds[0], LinkCmd::DeliverUp(p) if p.payload == 9));
    }

    #[test]
    fn destination_replies_with_rrep() {
        let mut d = state(5);
        let rreq = Frame::Aodv(AodvMessage::Rreq {
            rreq_id: 0,
            origin: 0,
            origin_seq: 1,
            dst: 5,
            hop_count: 2,
        });
        let cmds = d.on_frame(4, rreq, SimTime::ZERO, &ALWAYS);
        assert!(matches!(
            cmds[0],
            LinkCmd::SendTo(4, Frame::Aodv(AodvMessage::Rrep { origin: 0, dst: 5, .. }))
        ));
        // Reverse route to the origin was installed.
        assert_eq!(d.next_hop(0, SimTime::ZERO), Some(4));
    }

    #[test]
    fn intermediate_rebroadcasts_once() {
        let mut i = state(2);
        let rreq = AodvMessage::Rreq { rreq_id: 7, origin: 0, origin_seq: 1, dst: 5, hop_count: 0 };
        let c1 = i.on_frame(0, Frame::Aodv(rreq.clone()), SimTime::ZERO, &ALWAYS);
        assert!(matches!(
            c1[0],
            LinkCmd::Broadcast(Frame::Aodv(AodvMessage::Rreq { hop_count: 1, .. }))
        ));
        // Duplicate flood member is suppressed.
        let c2 = i.on_frame(1, Frame::Aodv(rreq), SimTime::ZERO, &ALWAYS);
        assert!(c2.is_empty());
    }

    #[test]
    fn rrep_completes_discovery_and_flushes() {
        let mut a = state(0);
        a.send(5, 42, 100, SimTime::ZERO);
        let rrep = Frame::Aodv(AodvMessage::Rrep { origin: 0, dst: 5, dst_seq: 2, hop_count: 1 });
        let cmds = a.on_frame(3, rrep, SimTime::ZERO, &ALWAYS);
        assert_eq!(cmds.len(), 1);
        assert!(matches!(&cmds[0], LinkCmd::SendTo(3, Frame::Data(p)) if p.payload == 42));
        assert_eq!(a.next_hop(5, SimTime::ZERO), Some(3));
    }

    #[test]
    fn rrep_relays_along_reverse_route() {
        let mut i = state(2);
        // Reverse route to origin 0 exists via node 1 (learned from an RREQ).
        let rreq = AodvMessage::Rreq { rreq_id: 0, origin: 0, origin_seq: 1, dst: 5, hop_count: 0 };
        i.on_frame(1, Frame::Aodv(rreq), SimTime::ZERO, &ALWAYS);
        let rrep = Frame::Aodv(AodvMessage::Rrep { origin: 0, dst: 5, dst_seq: 2, hop_count: 0 });
        let cmds = i.on_frame(3, rrep, SimTime::ZERO, &ALWAYS);
        assert!(matches!(
            cmds[0],
            LinkCmd::SendTo(1, Frame::Aodv(AodvMessage::Rrep { hop_count: 1, .. }))
        ));
        // Forward route to 5 installed via 3.
        assert_eq!(i.next_hop(5, SimTime::ZERO), Some(3));
    }

    #[test]
    fn forwarding_with_broken_link_emits_rerr() {
        let mut i = state(2);
        // Install a route to 5 via 3.
        let rrep = Frame::Aodv(AodvMessage::Rrep { origin: 0, dst: 5, dst_seq: 2, hop_count: 0 });
        i.on_frame(3, rrep, SimTime::ZERO, &ALWAYS);
        let pkt = DataPacket { src: 0, dst: 5, id: 0, hops: 1, payload: 1u32, bytes: 10 };
        let cmds = i.on_data(1, pkt, SimTime::ZERO, &NEVER);
        assert!(matches!(
            cmds[0],
            LinkCmd::Broadcast(Frame::Aodv(AodvMessage::Rerr { dst: 5, .. }))
        ));
        assert!(!i.has_route(5, SimTime::ZERO));
    }

    #[test]
    fn link_break_rerr_bumps_dst_seq_and_invalidates_equally_fresh_neighbors() {
        // RFC 3561 §6.11: the RERR must advertise seq+1, otherwise a
        // neighbour holding the same seq through us would keep its route.
        let mut i = state(2);
        let rrep = Frame::Aodv(AodvMessage::Rrep { origin: 0, dst: 5, dst_seq: 7, hop_count: 0 });
        i.on_frame(3, rrep, SimTime::ZERO, &ALWAYS);
        let pkt = DataPacket { src: 0, dst: 5, id: 0, hops: 1, payload: 1u32, bytes: 10 };
        let cmds = i.on_data(1, pkt, SimTime::ZERO, &NEVER);
        let LinkCmd::Broadcast(Frame::Aodv(AodvMessage::Rerr { dst: 5, dst_seq })) = cmds[0] else {
            panic!("expected RERR, got {:?}", cmds[0]);
        };
        assert_eq!(dst_seq, 8, "link-break RERR must bump the sequence number");

        // A neighbour whose route to 5 runs through node 2 with the same
        // pre-break seq must invalidate on hearing it.
        let mut n = state(9);
        let rrep = Frame::Aodv(AodvMessage::Rrep { origin: 9, dst: 5, dst_seq: 7, hop_count: 1 });
        n.on_frame(2, rrep, SimTime::ZERO, &ALWAYS);
        assert!(n.has_route(5, SimTime::ZERO));
        n.on_frame(2, Frame::Aodv(AodvMessage::Rerr { dst: 5, dst_seq }), SimTime::ZERO, &ALWAYS);
        assert!(!n.has_route(5, SimTime::ZERO), "equally-fresh stale route must die");
    }

    #[test]
    fn link_break_salvages_packet_behind_targeted_rediscovery() {
        let mut i = state(2);
        let rrep = Frame::Aodv(AodvMessage::Rrep { origin: 0, dst: 5, dst_seq: 2, hop_count: 0 });
        i.on_frame(3, rrep, SimTime::ZERO, &ALWAYS);
        let pkt = DataPacket { src: 0, dst: 5, id: 0, hops: 1, payload: 42u32, bytes: 10 };
        let cmds = i.on_data(1, pkt, SimTime::ZERO, &NEVER);
        // RERR, then a fresh RREQ for the same destination plus its timer.
        assert!(matches!(cmds[0], LinkCmd::Broadcast(Frame::Aodv(AodvMessage::Rerr { .. }))));
        assert!(matches!(
            cmds[1],
            LinkCmd::Broadcast(Frame::Aodv(AodvMessage::Rreq { dst: 5, .. }))
        ));
        assert!(matches!(cmds[2], LinkCmd::SetTimer(_, AodvTimer::RreqTimeout { dst: 5, .. })));
        // Rediscovery succeeds: the salvaged packet flows via the new hop.
        let rrep = Frame::Aodv(AodvMessage::Rrep { origin: 2, dst: 5, dst_seq: 9, hop_count: 0 });
        let cmds = i.on_frame(4, rrep, SimTime::ZERO, &ALWAYS);
        assert!(
            matches!(&cmds[0], LinkCmd::SendTo(4, Frame::Data(p)) if p.payload == 42),
            "salvaged packet must be re-sent, got {cmds:?}"
        );
    }

    #[test]
    fn intermediate_no_route_drop_emits_rerr_and_is_counted() {
        // A relay with no route at all must not lose the packet silently.
        let mut i = state(2);
        let pkt = DataPacket { src: 0, dst: 5, id: 0, hops: 1, payload: 1u32, bytes: 10 };
        let cmds = i.on_data(0, pkt, SimTime::ZERO, &ALWAYS);
        assert!(
            matches!(&cmds[0], LinkCmd::DropForwarded(p) if p.src == 0),
            "relay drop must be DropForwarded (no app callback), got {cmds:?}"
        );

        // With an expired entry the RERR goes out too, seq bumped.
        let mut j = state(2);
        let rrep = Frame::Aodv(AodvMessage::Rrep { origin: 0, dst: 5, dst_seq: 4, hop_count: 0 });
        j.on_frame(3, rrep, SimTime::ZERO, &ALWAYS);
        let later = SimTime::ZERO + SimDuration::from_secs_f64(10.0);
        let pkt = DataPacket { src: 0, dst: 5, id: 1, hops: 1, payload: 1u32, bytes: 10 };
        let cmds = j.on_data(0, pkt, later, &ALWAYS);
        assert!(matches!(
            cmds[0],
            LinkCmd::Broadcast(Frame::Aodv(AodvMessage::Rerr { dst: 5, dst_seq: 5 }))
        ));
        assert!(matches!(cmds[1], LinkCmd::DropForwarded(_)));
    }

    #[test]
    fn give_up_partitions_own_vs_forwarded_packets() {
        let mut i = state(2);
        // Own packet buffered by discovery.
        i.send(5, 1, 10, SimTime::ZERO);
        // A forwarded packet salvaged into the same pending queue.
        let rrep = Frame::Aodv(AodvMessage::Rrep { origin: 0, dst: 5, dst_seq: 2, hop_count: 0 });
        i.on_frame(3, rrep, SimTime::ZERO, &ALWAYS);
        let pkt = DataPacket { src: 0, dst: 5, id: 0, hops: 1, payload: 2u32, bytes: 10 };
        i.on_data(1, pkt, SimTime::ZERO, &NEVER);
        let cmds = i.on_timer(
            AodvTimer::RreqTimeout { dst: 5, attempt: 3 },
            SimTime::ZERO + SimDuration::from_secs_f64(10.0),
        );
        let failed: Vec<_> = cmds
            .iter()
            .filter(|c| matches!(c, LinkCmd::DropFailed(p) if p.src == 2))
            .collect();
        let forwarded: Vec<_> = cmds
            .iter()
            .filter(|c| matches!(c, LinkCmd::DropForwarded(p) if p.src == 0))
            .collect();
        assert_eq!(failed.len(), 1, "own packet fails to the app: {cmds:?}");
        assert_eq!(forwarded.len(), 1, "relayed packet is only counted: {cmds:?}");
    }

    #[test]
    fn rerr_invalidates_matching_route() {
        let mut a = state(0);
        let rrep = Frame::Aodv(AodvMessage::Rrep { origin: 0, dst: 5, dst_seq: 2, hop_count: 0 });
        a.on_frame(3, rrep, SimTime::ZERO, &ALWAYS);
        assert!(a.has_route(5, SimTime::ZERO));
        a.on_frame(
            3,
            Frame::Aodv(AodvMessage::Rerr { dst: 5, dst_seq: 2 }),
            SimTime::ZERO,
            &ALWAYS,
        );
        assert!(!a.has_route(5, SimTime::ZERO));
    }

    #[test]
    fn routes_expire_lazily() {
        let mut a = state(0);
        let rrep = Frame::Aodv(AodvMessage::Rrep { origin: 0, dst: 5, dst_seq: 2, hop_count: 0 });
        a.on_frame(3, rrep, SimTime::ZERO, &ALWAYS);
        let later = SimTime::ZERO + SimDuration::from_secs_f64(10.0);
        assert!(!a.has_route(5, later), "route must expire after 3 s idle");
    }

    #[test]
    fn rreq_retry_then_give_up() {
        let mut a = state(0);
        a.send(5, 42, 100, SimTime::ZERO);
        // First timeout: retry.
        let c1 = a.on_timer(AodvTimer::RreqTimeout { dst: 5, attempt: 1 }, SimTime(1));
        assert!(matches!(c1[0], LinkCmd::Broadcast(_)));
        let c2 = a.on_timer(AodvTimer::RreqTimeout { dst: 5, attempt: 2 }, SimTime(2));
        assert!(matches!(c2[0], LinkCmd::Broadcast(_)));
        // Third (== max_rreq_attempts) timeout: give up and fail the packet.
        let c3 = a.on_timer(AodvTimer::RreqTimeout { dst: 5, attempt: 3 }, SimTime(3));
        assert!(matches!(&c3[0], LinkCmd::DropFailed(p) if p.payload == 42));
    }

    #[test]
    fn timer_after_success_is_inert() {
        let mut a = state(0);
        a.send(5, 42, 100, SimTime::ZERO);
        let rrep = Frame::Aodv(AodvMessage::Rrep { origin: 0, dst: 5, dst_seq: 2, hop_count: 0 });
        a.on_frame(3, rrep, SimTime::ZERO, &ALWAYS);
        let cmds = a.on_timer(AodvTimer::RreqTimeout { dst: 5, attempt: 1 }, SimTime(1));
        assert!(cmds.is_empty());
    }

    #[test]
    fn fresher_seq_replaces_route_longer_hops_do_not() {
        let mut a = state(0);
        let now = SimTime::ZERO;
        let mk = |dst_seq, hop_count| {
            Frame::Aodv(AodvMessage::Rrep { origin: 9, dst: 5, dst_seq, hop_count })
        };
        a.on_frame(3, mk(2, 1), now, &ALWAYS); // via 3, 2 hops, seq 2
        assert_eq!(a.next_hop(5, now), Some(3));
        a.on_frame(4, mk(2, 5), now, &ALWAYS); // same seq, longer → ignored
        assert_eq!(a.next_hop(5, now), Some(3));
        a.on_frame(4, mk(3, 5), now, &ALWAYS); // fresher seq → wins
        assert_eq!(a.next_hop(5, now), Some(4));
    }

    #[test]
    fn hearing_a_frame_installs_one_hop_route() {
        let mut a = state(0);
        a.on_frame(
            7,
            Frame::Aodv(AodvMessage::Rerr { dst: 99, dst_seq: 0 }),
            SimTime::ZERO,
            &ALWAYS,
        );
        assert_eq!(a.next_hop(7, SimTime::ZERO), Some(7));
    }

    #[test]
    fn seen_rreq_expires_and_stays_bounded() {
        let mut i = state(2);
        let rreq = AodvMessage::Rreq { rreq_id: 7, origin: 0, origin_seq: 1, dst: 5, hop_count: 0 };
        let c1 = i.on_frame(0, Frame::Aodv(rreq.clone()), SimTime::ZERO, &ALWAYS);
        assert!(matches!(c1[0], LinkCmd::Broadcast(_)));
        // Within PATH_DISCOVERY_TIME: suppressed.
        let just_before = SimTime::ZERO + SimDuration::from_secs_f64(5.0);
        assert!(i.on_frame(1, Frame::Aodv(rreq.clone()), just_before, &ALWAYS).is_empty());
        // After expiry the same flood id is processed again (a rebooted
        // origin reusing ids must not be deaf-spotted forever)...
        let after = SimTime::ZERO + SimDuration::from_secs_f64(12.0);
        let c2 = i.on_frame(1, Frame::Aodv(rreq), after, &ALWAYS);
        assert!(matches!(c2[0], LinkCmd::Broadcast(_)), "expired entry must not suppress");
        // ...and the periodic sweep keeps the cache bounded: feed one
        // flood per second for a while; live entries span at most
        // 2 × PATH_DISCOVERY_TIME regardless of how many were seen.
        let mut j = state(3);
        for k in 0..200u64 {
            let at = SimTime(k * 1_000_000);
            let rreq =
                AodvMessage::Rreq { rreq_id: k, origin: 9, origin_seq: 1, dst: 5, hop_count: 0 };
            j.on_frame(1, Frame::Aodv(rreq), at, &ALWAYS);
        }
        assert!(
            j.seen_rreq.len() <= 2 * 6 + 4,
            "duplicate cache must stay bounded, holds {}",
            j.seen_rreq.len()
        );
    }

    #[test]
    fn stale_rrep_cannot_beat_expired_fresher_route() {
        // Satellite regression: a "heard a neighbour" placeholder used to
        // clobber an expired-but-fresher entry wholesale (seq included),
        // after which a stale RREP with a *lower* dst_seq won. The known
        // sequence number must survive both steps.
        let mut a = state(0);
        let rrep = Frame::Aodv(AodvMessage::Rrep { origin: 0, dst: 5, dst_seq: 9, hop_count: 1 });
        a.on_frame(3, rrep, SimTime::ZERO, &ALWAYS);
        // Route to 5 expires…
        let later = SimTime::ZERO + SimDuration::from_secs_f64(5.0);
        assert!(!a.has_route(5, later));
        // …then we overhear node 5 directly: revives the entry as 1-hop.
        a.on_frame(5, Frame::Aodv(AodvMessage::Rerr { dst: 99, dst_seq: 0 }), later, &ALWAYS);
        assert_eq!(a.next_hop(5, later), Some(5));
        // A stale RREP (seq 4 < 9) must not win, now or ever.
        let stale = Frame::Aodv(AodvMessage::Rrep { origin: 0, dst: 5, dst_seq: 4, hop_count: 3 });
        a.on_frame(7, stale, later, &ALWAYS);
        assert_eq!(a.next_hop(5, later), Some(5), "stale RREP must not replace the route");
        // A genuinely fresher RREP still wins.
        let fresh = Frame::Aodv(AodvMessage::Rrep { origin: 0, dst: 5, dst_seq: 10, hop_count: 3 });
        a.on_frame(7, fresh, later, &ALWAYS);
        assert_eq!(a.next_hop(5, later), Some(7));
    }

    #[test]
    fn app_primed_route_skips_discovery() {
        // The BF-flood reverse path: the app primes a route toward the
        // originator; a subsequent send uses it instead of flooding.
        let mut a = state(4);
        a.offer_app_route(0, 3, 2, SimTime::ZERO);
        let cmds = a.send(0, 42, 10, SimTime::ZERO);
        assert_eq!(cmds.len(), 1);
        assert!(matches!(&cmds[0], LinkCmd::SendTo(3, Frame::Data(p)) if p.payload == 42));
    }

    #[test]
    fn forwarded_data_installs_reverse_route_to_source() {
        // Gratuitous-RREP-style: relaying (or receiving) data teaches the
        // reverse path toward its source.
        let mut d = state(5);
        let pkt = DataPacket { src: 0, dst: 5, id: 0, hops: 2, payload: 1u32, bytes: 10 };
        let cmds = d.on_data(3, pkt, SimTime::ZERO, &ALWAYS);
        assert!(matches!(cmds[0], LinkCmd::DeliverUp(_)));
        assert_eq!(d.next_hop(0, SimTime::ZERO), Some(3), "reverse route to src via relay");
    }

    #[test]
    fn priming_never_downgrades_a_known_seq() {
        let mut a = state(0);
        let rrep = Frame::Aodv(AodvMessage::Rrep { origin: 0, dst: 5, dst_seq: 9, hop_count: 2 });
        a.on_frame(3, rrep, SimTime::ZERO, &ALWAYS);
        // Priming a shorter path re-points the route…
        a.offer_app_route(5, 8, 1, SimTime::ZERO);
        assert_eq!(a.next_hop(5, SimTime::ZERO), Some(8));
        // …but the seq floor survives: a stale RREP still loses.
        let stale = Frame::Aodv(AodvMessage::Rrep { origin: 0, dst: 5, dst_seq: 8, hop_count: 1 });
        a.on_frame(7, stale, SimTime::ZERO, &ALWAYS);
        assert_eq!(a.next_hop(5, SimTime::ZERO), Some(8));
    }
}
