//! Ad hoc On-Demand Distance Vector routing — the RFC 3561 core, which is
//! the wireless routing protocol the paper's simulations use (Table 7).
//!
//! Implemented behaviour:
//!
//! * on-demand route discovery: RREQ flooding with (origin, rreq_id)
//!   duplicate suppression, reverse-route setup at every forwarder, RREP
//!   unicast back along the reverse path (destination-only reply);
//! * destination sequence numbers with freshest-route-wins updates;
//! * hop-count metric;
//! * active-route timeout with lazy expiry;
//! * RREQ retries with exponential back-off, then delivery-failure
//!   reporting to the application;
//! * link-break handling at forwarding time: route invalidation plus a
//!   one-hop RERR broadcast so neighbours drop the stale route too.
//!
//! Omitted (not needed for the paper's workloads): gratuitous RREPs,
//! intermediate-node replies, precursor lists with targeted RERR delivery,
//! local repair, and hello messages (neighbourhood sensing is physical —
//! the engine answers "is X in range" directly, modelling an idealized
//! beacon protocol).
//!
//! The state machine is engine-agnostic: every handler returns
//! [`LinkCmd`]s that the engine turns into frames, timers, and
//! application up-calls. That keeps AODV unit-testable without a radio.

use std::collections::HashMap;
use std::collections::HashSet;

use crate::packet::{AodvMessage, DataPacket, Frame, NodeId};
use crate::time::{SimDuration, SimTime};

/// AODV tunables.
#[derive(Debug, Clone, Copy)]
pub struct AodvConfig {
    /// How long a route stays valid after its last use.
    pub active_route_timeout: SimDuration,
    /// Time to wait for an RREP before retrying the flood.
    pub rreq_timeout: SimDuration,
    /// Total RREQ attempts before giving up (RFC: RREQ_RETRIES + 1 = 3).
    pub max_rreq_attempts: u32,
}

impl Default for AodvConfig {
    fn default() -> Self {
        AodvConfig {
            active_route_timeout: SimDuration::from_secs_f64(3.0),
            rreq_timeout: SimDuration::from_millis(200),
            max_rreq_attempts: 3,
        }
    }
}

/// A routing-table entry.
#[derive(Debug, Clone, Copy)]
struct Route {
    next_hop: NodeId,
    hop_count: u32,
    dst_seq: u64,
    expires: SimTime,
    valid: bool,
}

/// AODV timers (scheduled through the engine).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AodvTimer {
    /// RREQ for `dst` may have been lost; `attempt` floods done so far.
    RreqTimeout {
        /// Destination being searched.
        dst: NodeId,
        /// Attempts already made.
        attempt: u32,
    },
}

/// What the engine should do on behalf of this node.
#[derive(Debug)]
pub enum LinkCmd<P> {
    /// Transmit a frame to a specific neighbour.
    SendTo(NodeId, Frame<P>),
    /// Transmit a frame to everyone in range.
    Broadcast(Frame<P>),
    /// Arm an AODV timer.
    SetTimer(SimDuration, AodvTimer),
    /// The packet reached this node: hand it to the application.
    DeliverUp(DataPacket<P>),
    /// The packet is undeliverable: tell the application it failed.
    DropFailed(DataPacket<P>),
}

/// Per-node AODV state.
#[derive(Debug)]
pub struct AodvState<P> {
    me: NodeId,
    cfg: AodvConfig,
    seq: u64,
    next_rreq_id: u64,
    next_packet_id: u64,
    routes: HashMap<NodeId, Route>,
    seen_rreq: HashSet<(NodeId, u64)>,
    /// Packets waiting for a route, per destination.
    pending: HashMap<NodeId, Vec<DataPacket<P>>>,
    /// Statistics: control messages originated or forwarded by this node.
    pub control_messages: u64,
}

impl<P: Clone> AodvState<P> {
    /// Fresh state for node `me`.
    pub fn new(me: NodeId, cfg: AodvConfig) -> Self {
        AodvState {
            me,
            cfg,
            seq: 0,
            next_rreq_id: 0,
            next_packet_id: 0,
            routes: HashMap::new(),
            seen_rreq: HashSet::new(),
            pending: HashMap::new(),
            control_messages: 0,
        }
    }

    /// Clears volatile routing state after a crash: routes, the RREQ
    /// duplicate cache, and packets buffered for discovery all die with
    /// the node. Sequence numbers and RREQ ids survive the reboot (RFC
    /// 3561 §6.1 recommends persisting them so freshness comparisons stay
    /// monotonic — resetting them would get this node's post-reboot RREQs
    /// suppressed by neighbours' duplicate caches).
    pub fn reset(&mut self) {
        self.routes.clear();
        self.seen_rreq.clear();
        self.pending.clear();
    }

    /// Does this node currently hold a live route to `dst`?
    pub fn has_route(&self, dst: NodeId, now: SimTime) -> bool {
        self.routes.get(&dst).is_some_and(|r| r.valid && r.expires > now)
    }

    /// Next hop toward `dst`, when a live route exists.
    pub fn next_hop(&self, dst: NodeId, now: SimTime) -> Option<NodeId> {
        self.routes.get(&dst).filter(|r| r.valid && r.expires > now).map(|r| r.next_hop)
    }

    fn refresh(&mut self, dst: NodeId, now: SimTime) {
        if let Some(r) = self.routes.get_mut(&dst) {
            r.expires = now + self.cfg.active_route_timeout;
        }
    }

    /// Installs/updates a route if it is fresher (higher seq) or equally
    /// fresh but shorter.
    fn offer_route(
        &mut self,
        dst: NodeId,
        next_hop: NodeId,
        hop_count: u32,
        dst_seq: u64,
        now: SimTime,
    ) {
        let expires = now + self.cfg.active_route_timeout;
        let candidate = Route { next_hop, hop_count, dst_seq, expires, valid: true };
        match self.routes.get(&dst) {
            Some(r) if r.valid && r.expires > now => {
                if dst_seq > r.dst_seq || (dst_seq == r.dst_seq && hop_count < r.hop_count) {
                    self.routes.insert(dst, candidate);
                }
            }
            _ => {
                self.routes.insert(dst, candidate);
            }
        }
    }

    /// Application entry point: send `payload` of `bytes` bytes to `dst`.
    pub fn send(&mut self, dst: NodeId, payload: P, bytes: usize, now: SimTime) -> Vec<LinkCmd<P>> {
        let pkt = DataPacket { src: self.me, dst, id: self.next_packet_id, payload, bytes };
        self.next_packet_id += 1;
        if dst == self.me {
            return vec![LinkCmd::DeliverUp(pkt)];
        }
        if let Some(nh) = self.next_hop(dst, now) {
            self.refresh(dst, now);
            return vec![LinkCmd::SendTo(nh, Frame::Data(pkt))];
        }
        // No route: buffer and (maybe) start discovery.
        let discovering = self.pending.contains_key(&dst);
        self.pending.entry(dst).or_default().push(pkt);
        if discovering {
            return Vec::new();
        }
        self.start_discovery(dst, 1)
    }

    fn start_discovery(&mut self, dst: NodeId, attempt: u32) -> Vec<LinkCmd<P>> {
        self.seq += 1;
        let rreq_id = self.next_rreq_id;
        self.next_rreq_id += 1;
        self.seen_rreq.insert((self.me, rreq_id));
        self.control_messages += 1;
        let msg =
            AodvMessage::Rreq { rreq_id, origin: self.me, origin_seq: self.seq, dst, hop_count: 0 };
        // Exponential back-off per RFC (binary, capped by attempts).
        let timeout = self.cfg.rreq_timeout.mul_f64(f64::from(1 << (attempt - 1).min(4)));
        vec![
            LinkCmd::Broadcast(Frame::Aodv(msg)),
            LinkCmd::SetTimer(timeout, AodvTimer::RreqTimeout { dst, attempt }),
        ]
    }

    /// Handles a received frame. `is_neighbor` answers whether a node is
    /// currently within radio range (idealized beaconing).
    pub fn on_frame(
        &mut self,
        link_from: NodeId,
        frame: Frame<P>,
        now: SimTime,
        is_neighbor: &dyn Fn(NodeId) -> bool,
    ) -> Vec<LinkCmd<P>> {
        // Hearing any frame from a neighbour is evidence of a 1-hop route.
        self.offer_route(link_from, link_from, 1, 0, now);
        match frame {
            Frame::Aodv(msg) => self.on_aodv(link_from, msg, now),
            Frame::Data(pkt) => self.on_data(pkt, now, is_neighbor),
            Frame::Bcast { .. } | Frame::Hello => {
                unreachable!("broadcasts and beacons are delivered by the engine, not AODV")
            }
        }
    }

    fn on_aodv(&mut self, from: NodeId, msg: AodvMessage, now: SimTime) -> Vec<LinkCmd<P>> {
        match msg {
            AodvMessage::Rreq { rreq_id, origin, origin_seq, dst, hop_count } => {
                if origin == self.me || !self.seen_rreq.insert((origin, rreq_id)) {
                    return Vec::new(); // my own flood, or already processed
                }
                // Reverse route toward the origin.
                self.offer_route(origin, from, hop_count + 1, origin_seq, now);
                if dst == self.me {
                    // Destination replies. Bump own seq (RFC §6.6.1).
                    self.seq = self.seq.max(origin_seq) + 1;
                    self.control_messages += 1;
                    let rrep =
                        AodvMessage::Rrep { origin, dst: self.me, dst_seq: self.seq, hop_count: 0 };
                    return vec![LinkCmd::SendTo(from, Frame::Aodv(rrep))];
                }
                self.control_messages += 1;
                let fwd = AodvMessage::Rreq {
                    rreq_id,
                    origin,
                    origin_seq,
                    dst,
                    hop_count: hop_count + 1,
                };
                vec![LinkCmd::Broadcast(Frame::Aodv(fwd))]
            }
            AodvMessage::Rrep { origin, dst, dst_seq, hop_count } => {
                // Forward route toward the replying destination.
                self.offer_route(dst, from, hop_count + 1, dst_seq, now);
                if origin == self.me {
                    // Discovery finished: flush buffered packets.
                    return self.flush_pending(dst, now);
                }
                // Relay the RREP along the reverse route.
                match self.next_hop(origin, now) {
                    Some(nh) => {
                        self.control_messages += 1;
                        let fwd =
                            AodvMessage::Rrep { origin, dst, dst_seq, hop_count: hop_count + 1 };
                        vec![LinkCmd::SendTo(nh, Frame::Aodv(fwd))]
                    }
                    None => Vec::new(), // reverse route evaporated; flood will retry
                }
            }
            AodvMessage::Rerr { dst, dst_seq } => {
                // Invalidate our route if it goes through the sender.
                if let Some(r) = self.routes.get_mut(&dst) {
                    if r.valid && r.next_hop == from && r.dst_seq <= dst_seq {
                        r.valid = false;
                    }
                }
                Vec::new()
            }
        }
    }

    fn on_data(
        &mut self,
        pkt: DataPacket<P>,
        now: SimTime,
        is_neighbor: &dyn Fn(NodeId) -> bool,
    ) -> Vec<LinkCmd<P>> {
        if pkt.dst == self.me {
            return vec![LinkCmd::DeliverUp(pkt)];
        }
        // Forward along the route; detect broken links at forwarding time
        // (modelling link-layer feedback).
        if let Some(nh) = self.next_hop(pkt.dst, now) {
            if is_neighbor(nh) {
                self.refresh(pkt.dst, now);
                return vec![LinkCmd::SendTo(nh, Frame::Data(pkt))];
            }
            // Link break: invalidate, warn neighbours, drop the packet.
            let seq = self.routes.get(&pkt.dst).map_or(0, |r| r.dst_seq);
            if let Some(r) = self.routes.get_mut(&pkt.dst) {
                r.valid = false;
            }
            self.control_messages += 1;
            return vec![LinkCmd::Broadcast(Frame::Aodv(AodvMessage::Rerr {
                dst: pkt.dst,
                dst_seq: seq,
            }))];
        }
        // No route at an intermediate hop (expired underway): drop.
        Vec::new()
    }

    /// Handles an AODV timer.
    pub fn on_timer(&mut self, timer: AodvTimer, now: SimTime) -> Vec<LinkCmd<P>> {
        match timer {
            AodvTimer::RreqTimeout { dst, attempt } => {
                if self.has_route(dst, now) || !self.pending.contains_key(&dst) {
                    return Vec::new(); // discovery succeeded (or nothing waits)
                }
                if attempt < self.cfg.max_rreq_attempts {
                    return self.start_discovery(dst, attempt + 1);
                }
                // Give up: fail every buffered packet.
                let pkts = self.pending.remove(&dst).unwrap_or_default();
                pkts.into_iter().map(LinkCmd::DropFailed).collect()
            }
        }
    }

    fn flush_pending(&mut self, dst: NodeId, now: SimTime) -> Vec<LinkCmd<P>> {
        let Some(pkts) = self.pending.remove(&dst) else {
            return Vec::new();
        };
        let Some(nh) = self.next_hop(dst, now) else {
            // Route vanished between RREP receipt and flush; re-buffer.
            self.pending.insert(dst, pkts);
            return Vec::new();
        };
        self.refresh(dst, now);
        pkts.into_iter().map(|p| LinkCmd::SendTo(nh, Frame::Data(p))).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn state(me: NodeId) -> AodvState<u32> {
        AodvState::new(me, AodvConfig::default())
    }

    const ALWAYS: fn(NodeId) -> bool = |_| true;
    const NEVER: fn(NodeId) -> bool = |_| false;

    #[test]
    fn send_without_route_floods_rreq() {
        let mut a = state(0);
        let cmds = a.send(5, 42, 100, SimTime::ZERO);
        assert!(matches!(
            cmds[0],
            LinkCmd::Broadcast(Frame::Aodv(AodvMessage::Rreq { dst: 5, .. }))
        ));
        assert!(matches!(
            cmds[1],
            LinkCmd::SetTimer(_, AodvTimer::RreqTimeout { dst: 5, attempt: 1 })
        ));
    }

    #[test]
    fn second_send_while_discovering_only_buffers() {
        let mut a = state(0);
        a.send(5, 1, 10, SimTime::ZERO);
        let cmds = a.send(5, 2, 10, SimTime::ZERO);
        assert!(cmds.is_empty(), "no second flood while one is outstanding");
    }

    #[test]
    fn self_send_delivers_up() {
        let mut a = state(3);
        let cmds = a.send(3, 9, 10, SimTime::ZERO);
        assert!(matches!(&cmds[0], LinkCmd::DeliverUp(p) if p.payload == 9));
    }

    #[test]
    fn destination_replies_with_rrep() {
        let mut d = state(5);
        let rreq = Frame::Aodv(AodvMessage::Rreq {
            rreq_id: 0,
            origin: 0,
            origin_seq: 1,
            dst: 5,
            hop_count: 2,
        });
        let cmds = d.on_frame(4, rreq, SimTime::ZERO, &ALWAYS);
        assert!(matches!(
            cmds[0],
            LinkCmd::SendTo(4, Frame::Aodv(AodvMessage::Rrep { origin: 0, dst: 5, .. }))
        ));
        // Reverse route to the origin was installed.
        assert_eq!(d.next_hop(0, SimTime::ZERO), Some(4));
    }

    #[test]
    fn intermediate_rebroadcasts_once() {
        let mut i = state(2);
        let rreq = AodvMessage::Rreq { rreq_id: 7, origin: 0, origin_seq: 1, dst: 5, hop_count: 0 };
        let c1 = i.on_frame(0, Frame::Aodv(rreq.clone()), SimTime::ZERO, &ALWAYS);
        assert!(matches!(
            c1[0],
            LinkCmd::Broadcast(Frame::Aodv(AodvMessage::Rreq { hop_count: 1, .. }))
        ));
        // Duplicate flood member is suppressed.
        let c2 = i.on_frame(1, Frame::Aodv(rreq), SimTime::ZERO, &ALWAYS);
        assert!(c2.is_empty());
    }

    #[test]
    fn rrep_completes_discovery_and_flushes() {
        let mut a = state(0);
        a.send(5, 42, 100, SimTime::ZERO);
        let rrep = Frame::Aodv(AodvMessage::Rrep { origin: 0, dst: 5, dst_seq: 2, hop_count: 1 });
        let cmds = a.on_frame(3, rrep, SimTime::ZERO, &ALWAYS);
        assert_eq!(cmds.len(), 1);
        assert!(matches!(&cmds[0], LinkCmd::SendTo(3, Frame::Data(p)) if p.payload == 42));
        assert_eq!(a.next_hop(5, SimTime::ZERO), Some(3));
    }

    #[test]
    fn rrep_relays_along_reverse_route() {
        let mut i = state(2);
        // Reverse route to origin 0 exists via node 1 (learned from an RREQ).
        let rreq = AodvMessage::Rreq { rreq_id: 0, origin: 0, origin_seq: 1, dst: 5, hop_count: 0 };
        i.on_frame(1, Frame::Aodv(rreq), SimTime::ZERO, &ALWAYS);
        let rrep = Frame::Aodv(AodvMessage::Rrep { origin: 0, dst: 5, dst_seq: 2, hop_count: 0 });
        let cmds = i.on_frame(3, rrep, SimTime::ZERO, &ALWAYS);
        assert!(matches!(
            cmds[0],
            LinkCmd::SendTo(1, Frame::Aodv(AodvMessage::Rrep { hop_count: 1, .. }))
        ));
        // Forward route to 5 installed via 3.
        assert_eq!(i.next_hop(5, SimTime::ZERO), Some(3));
    }

    #[test]
    fn forwarding_with_broken_link_emits_rerr() {
        let mut i = state(2);
        // Install a route to 5 via 3.
        let rrep = Frame::Aodv(AodvMessage::Rrep { origin: 0, dst: 5, dst_seq: 2, hop_count: 0 });
        i.on_frame(3, rrep, SimTime::ZERO, &ALWAYS);
        let pkt = DataPacket { src: 0, dst: 5, id: 0, payload: 1u32, bytes: 10 };
        let cmds = i.on_data(pkt, SimTime::ZERO, &NEVER);
        assert!(matches!(
            cmds[0],
            LinkCmd::Broadcast(Frame::Aodv(AodvMessage::Rerr { dst: 5, .. }))
        ));
        assert!(!i.has_route(5, SimTime::ZERO));
    }

    #[test]
    fn rerr_invalidates_matching_route() {
        let mut a = state(0);
        let rrep = Frame::Aodv(AodvMessage::Rrep { origin: 0, dst: 5, dst_seq: 2, hop_count: 0 });
        a.on_frame(3, rrep, SimTime::ZERO, &ALWAYS);
        assert!(a.has_route(5, SimTime::ZERO));
        a.on_frame(
            3,
            Frame::Aodv(AodvMessage::Rerr { dst: 5, dst_seq: 2 }),
            SimTime::ZERO,
            &ALWAYS,
        );
        assert!(!a.has_route(5, SimTime::ZERO));
    }

    #[test]
    fn routes_expire_lazily() {
        let mut a = state(0);
        let rrep = Frame::Aodv(AodvMessage::Rrep { origin: 0, dst: 5, dst_seq: 2, hop_count: 0 });
        a.on_frame(3, rrep, SimTime::ZERO, &ALWAYS);
        let later = SimTime::ZERO + SimDuration::from_secs_f64(10.0);
        assert!(!a.has_route(5, later), "route must expire after 3 s idle");
    }

    #[test]
    fn rreq_retry_then_give_up() {
        let mut a = state(0);
        a.send(5, 42, 100, SimTime::ZERO);
        // First timeout: retry.
        let c1 = a.on_timer(AodvTimer::RreqTimeout { dst: 5, attempt: 1 }, SimTime(1));
        assert!(matches!(c1[0], LinkCmd::Broadcast(_)));
        let c2 = a.on_timer(AodvTimer::RreqTimeout { dst: 5, attempt: 2 }, SimTime(2));
        assert!(matches!(c2[0], LinkCmd::Broadcast(_)));
        // Third (== max_rreq_attempts) timeout: give up and fail the packet.
        let c3 = a.on_timer(AodvTimer::RreqTimeout { dst: 5, attempt: 3 }, SimTime(3));
        assert!(matches!(&c3[0], LinkCmd::DropFailed(p) if p.payload == 42));
    }

    #[test]
    fn timer_after_success_is_inert() {
        let mut a = state(0);
        a.send(5, 42, 100, SimTime::ZERO);
        let rrep = Frame::Aodv(AodvMessage::Rrep { origin: 0, dst: 5, dst_seq: 2, hop_count: 0 });
        a.on_frame(3, rrep, SimTime::ZERO, &ALWAYS);
        let cmds = a.on_timer(AodvTimer::RreqTimeout { dst: 5, attempt: 1 }, SimTime(1));
        assert!(cmds.is_empty());
    }

    #[test]
    fn fresher_seq_replaces_route_longer_hops_do_not() {
        let mut a = state(0);
        let now = SimTime::ZERO;
        let mk = |dst_seq, hop_count| {
            Frame::Aodv(AodvMessage::Rrep { origin: 9, dst: 5, dst_seq, hop_count })
        };
        a.on_frame(3, mk(2, 1), now, &ALWAYS); // via 3, 2 hops, seq 2
        assert_eq!(a.next_hop(5, now), Some(3));
        a.on_frame(4, mk(2, 5), now, &ALWAYS); // same seq, longer → ignored
        assert_eq!(a.next_hop(5, now), Some(3));
        a.on_frame(4, mk(3, 5), now, &ALWAYS); // fresher seq → wins
        assert_eq!(a.next_hop(5, now), Some(4));
    }

    #[test]
    fn hearing_a_frame_installs_one_hop_route() {
        let mut a = state(0);
        a.on_frame(
            7,
            Frame::Aodv(AodvMessage::Rerr { dst: 99, dst_seq: 0 }),
            SimTime::ZERO,
            &ALWAYS,
        );
        assert_eq!(a.next_hop(7, SimTime::ZERO), Some(7));
    }
}
