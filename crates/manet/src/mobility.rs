//! Random-waypoint mobility (Broch et al., MOBICOM 1998) — the model the
//! paper uses: "every device moves towards its own destination with its own
//! speed, and when it reaches that destination it will stop there for a
//! period of time (holding time) and then move to another destination with
//! a new random speed."
//!
//! Positions are interpolated analytically on each movement leg, so the
//! simulator never needs per-tick position events: [`MobilityState::position_at`]
//! lazily advances through legs up to the queried time. Each node owns a
//! seeded RNG, so trajectories are independent of event interleaving.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::time::{SimDuration, SimTime};

/// A 2-D position in metres. (The simulator keeps its own lightweight type
/// to stay independent of the skyline crates.)
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Pos {
    /// x-coordinate (m).
    pub x: f64,
    /// y-coordinate (m).
    pub y: f64,
}

impl Pos {
    /// Creates a position.
    pub const fn new(x: f64, y: f64) -> Self {
        Pos { x, y }
    }

    /// Euclidean distance to `o` (m).
    pub fn dist(&self, o: Pos) -> f64 {
        self.dist2(o).sqrt()
    }

    /// Squared distance to `o`.
    pub fn dist2(&self, o: Pos) -> f64 {
        let dx = self.x - o.x;
        let dy = self.y - o.y;
        dx * dx + dy * dy
    }
}

/// Random-waypoint parameters (Table 7 of the paper).
#[derive(Debug, Clone, Copy)]
pub struct MobilityConfig {
    /// Area width (m).
    pub width: f64,
    /// Area height (m).
    pub height: f64,
    /// Minimum speed (m/s). Paper: 2.
    pub speed_min: f64,
    /// Maximum speed (m/s). Paper: 10.
    pub speed_max: f64,
    /// Holding (pause) time at each waypoint. Paper: 120 s.
    pub pause: SimDuration,
    /// When `true`, nodes never move (the paper's static pre-tests).
    pub frozen: bool,
}

impl MobilityConfig {
    /// The paper's Table 7 settings on the 1000 × 1000 m area.
    pub fn paper() -> Self {
        MobilityConfig {
            width: 1000.0,
            height: 1000.0,
            speed_min: 2.0,
            speed_max: 10.0,
            pause: SimDuration::from_secs_f64(120.0),
            frozen: false,
        }
    }

    /// A static variant (nodes pinned at their start positions).
    pub fn frozen() -> Self {
        MobilityConfig { frozen: true, ..Self::paper() }
    }

    /// The fastest speed this configuration can ever produce (0 when
    /// frozen). The engine uses the network-wide maximum as the drift
    /// bound for its spatial-grid staleness window.
    pub fn max_speed(&self) -> f64 {
        if self.frozen {
            0.0
        } else {
            self.speed_max
        }
    }
}

/// One movement leg: pause at `from` until `depart`, then travel to `to`
/// at `speed`, arriving at `arrive`.
#[derive(Debug, Clone, Copy)]
struct Leg {
    from: Pos,
    to: Pos,
    depart: SimTime,
    arrive: SimTime,
}

/// Per-node mobility state.
#[derive(Debug)]
pub struct MobilityState {
    cfg: MobilityConfig,
    rng: StdRng,
    leg: Leg,
}

impl MobilityState {
    /// New state for a node starting at `start`; the first pause begins at
    /// time zero.
    pub fn new(cfg: MobilityConfig, start: Pos, seed: u64) -> Self {
        let mut s = MobilityState {
            cfg,
            rng: StdRng::seed_from_u64(seed),
            leg: Leg { from: start, to: start, depart: SimTime::ZERO, arrive: SimTime::ZERO },
        };
        s.leg = s.next_leg(start, SimTime::ZERO);
        s
    }

    /// Draws the next waypoint leg, beginning with a pause at `at`.
    fn next_leg(&mut self, from: Pos, at: SimTime) -> Leg {
        if self.cfg.frozen {
            // A "leg" that never ends: the node stays put forever.
            return Leg { from, to: from, depart: SimTime(u64::MAX), arrive: SimTime(u64::MAX) };
        }
        let depart = at + self.cfg.pause;
        let to = Pos::new(
            self.rng.random_range(0.0..self.cfg.width),
            self.rng.random_range(0.0..self.cfg.height),
        );
        let speed = self.rng.random_range(self.cfg.speed_min..=self.cfg.speed_max);
        let travel = SimDuration::from_secs_f64(from.dist(to) / speed);
        Leg { from, to, depart, arrive: depart + travel }
    }

    /// Non-mutating position lookup: `Some(pos)` when `t` falls inside the
    /// current leg (no RNG advance needed), `None` when answering would
    /// require drawing further legs.
    ///
    /// This is the cheap path for high-frequency probes like the
    /// range-transition detector: the common case — many probes per leg —
    /// costs one comparison and an interpolation, and callers fall back to
    /// [`position_at`](Self::position_at) on `None`.
    pub fn peek(&self, t: SimTime) -> Option<Pos> {
        if self.leg.arrive == SimTime(u64::MAX) {
            // Frozen, or a node parked forever: `to == from`.
            return Some(self.leg.from);
        }
        if t >= self.leg.arrive {
            return None;
        }
        if t <= self.leg.depart {
            return Some(self.leg.from);
        }
        let total = self.leg.arrive.since(self.leg.depart).as_secs_f64();
        let done = t.since(self.leg.depart).as_secs_f64();
        let f = if total > 0.0 { done / total } else { 1.0 };
        Some(Pos::new(
            self.leg.from.x + (self.leg.to.x - self.leg.from.x) * f,
            self.leg.from.y + (self.leg.to.y - self.leg.from.y) * f,
        ))
    }

    /// Position at time `t` (must not go backwards across calls further
    /// than the current leg start — the simulator's clock is monotone, so
    /// in practice `t` is non-decreasing; queries inside the current leg
    /// are always exact).
    pub fn position_at(&mut self, t: SimTime) -> Pos {
        // Advance completed legs.
        while t >= self.leg.arrive {
            let (to, arrive) = (self.leg.to, self.leg.arrive);
            if arrive == SimTime(u64::MAX) {
                return to; // frozen
            }
            self.leg = self.next_leg(to, arrive);
        }
        if t <= self.leg.depart {
            return self.leg.from;
        }
        // Linear interpolation along the current leg.
        let total = self.leg.arrive.since(self.leg.depart).as_secs_f64();
        let done = t.since(self.leg.depart).as_secs_f64();
        let f = if total > 0.0 { done / total } else { 1.0 };
        Pos::new(
            self.leg.from.x + (self.leg.to.x - self.leg.from.x) * f,
            self.leg.from.y + (self.leg.to.y - self.leg.from.y) * f,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg_fast() -> MobilityConfig {
        MobilityConfig { pause: SimDuration::from_secs_f64(1.0), ..MobilityConfig::paper() }
    }

    #[test]
    fn stays_inside_area() {
        let mut m = MobilityState::new(cfg_fast(), Pos::new(500.0, 500.0), 42);
        for k in 0..5000 {
            let p = m.position_at(SimTime::from_secs_f64(k as f64));
            assert!((0.0..=1000.0).contains(&p.x), "x out of area at {k}s: {p:?}");
            assert!((0.0..=1000.0).contains(&p.y));
        }
    }

    #[test]
    fn pauses_at_waypoints() {
        let start = Pos::new(100.0, 100.0);
        let mut m = MobilityState::new(cfg_fast(), start, 7);
        // During the initial pause the node has not moved.
        assert_eq!(m.position_at(SimTime::from_secs_f64(0.5)), start);
        assert_eq!(m.position_at(SimTime::from_secs_f64(1.0)), start);
    }

    #[test]
    fn moves_monotonically_along_leg() {
        let start = Pos::new(0.0, 0.0);
        let mut m = MobilityState::new(cfg_fast(), start, 3);
        let p1 = m.position_at(SimTime::from_secs_f64(2.0));
        let p2 = m.position_at(SimTime::from_secs_f64(3.0));
        // Distance from start grows while travelling (speed ≥ 2 m/s and the
        // area is big, so the first leg very likely lasts > 3 s).
        assert!(start.dist(p2) >= start.dist(p1));
    }

    #[test]
    fn speed_is_within_bounds() {
        let mut m = MobilityState::new(cfg_fast(), Pos::new(500.0, 500.0), 11);
        // Sample positions every 100 ms; displacement per second never
        // exceeds speed_max.
        let mut prev = m.position_at(SimTime::ZERO);
        for k in 1..2000 {
            let t = SimTime(k * 100_000);
            let p = m.position_at(t);
            let v = prev.dist(p) / 0.1;
            assert!(v <= 10.0 + 1e-6, "instantaneous speed {v} m/s at {t}");
            prev = p;
        }
    }

    #[test]
    fn frozen_nodes_never_move() {
        let start = Pos::new(123.0, 456.0);
        let mut m = MobilityState::new(MobilityConfig::frozen(), start, 9);
        for k in [0.0, 100.0, 7200.0] {
            assert_eq!(m.position_at(SimTime::from_secs_f64(k)), start);
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let mut a = MobilityState::new(cfg_fast(), Pos::new(0.0, 0.0), 5);
        let mut b = MobilityState::new(cfg_fast(), Pos::new(0.0, 0.0), 5);
        for k in 0..100 {
            let t = SimTime::from_secs_f64(k as f64 * 7.3);
            assert_eq!(a.position_at(t), b.position_at(t));
        }
    }

    #[test]
    fn peek_matches_stepped_model_on_seeded_traces() {
        for seed in [5u64, 42, 0xBEEF] {
            let mut stepped = MobilityState::new(cfg_fast(), Pos::new(250.0, 750.0), seed);
            let mut peeked = MobilityState::new(cfg_fast(), Pos::new(250.0, 750.0), seed);
            for k in 0..4000u64 {
                let t = SimTime(k * 500_000); // every 0.5 s
                let truth = stepped.position_at(t);
                // Peek either answers exactly or declines; on decline the
                // mutable step must agree too.
                match peeked.peek(t) {
                    Some(p) => assert_eq!(p, truth, "seed {seed} t {t}"),
                    None => assert_eq!(peeked.position_at(t), truth),
                }
            }
        }
    }

    #[test]
    fn peek_on_frozen_nodes_always_answers() {
        let start = Pos::new(10.0, 20.0);
        let m = MobilityState::new(MobilityConfig::frozen(), start, 1);
        assert_eq!(m.peek(SimTime::from_secs_f64(1e6)), Some(start));
    }
}
