//! The simulator's event queue: a binary heap keyed on (time, sequence
//! number), so simultaneous events fire in insertion order — the property
//! that makes runs reproducible.

use crate::time::SimTime;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// A scheduled event carrying a payload of type `E`.
struct Scheduled<E> {
    at: SimTime,
    seq: u64,
    payload: E,
}

impl<E> PartialEq for Scheduled<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for Scheduled<E> {}
impl<E> PartialOrd for Scheduled<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Scheduled<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap: invert so the earliest event pops first.
        other.at.cmp(&self.at).then(other.seq.cmp(&self.seq))
    }
}

/// Min-queue of timestamped events with stable FIFO tie-breaking.
pub struct EventQueue<E> {
    heap: BinaryHeap<Scheduled<E>>,
    next_seq: u64,
    now: SimTime,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        EventQueue { heap: BinaryHeap::new(), next_seq: 0, now: SimTime::ZERO }
    }
}

impl<E> EventQueue<E> {
    /// Empty queue at time zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Current simulated time (the timestamp of the last popped event).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Schedules `payload` at absolute time `at`.
    ///
    /// # Panics
    /// Panics when `at` lies in the past — scheduling backwards is always a
    /// logic error in a discrete-event simulation.
    pub fn schedule(&mut self, at: SimTime, payload: E) {
        assert!(at >= self.now, "event scheduled in the past ({at} < {})", self.now);
        self.heap.push(Scheduled { at, seq: self.next_seq, payload });
        self.next_seq += 1;
    }

    /// Pops the earliest event, advancing the clock to its timestamp.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        let s = self.heap.pop()?;
        self.now = s.at;
        Some((s.at, s.payload))
    }

    /// Timestamp of the next event without popping it.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|s| s.at)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// `true` when nothing is scheduled.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime(30), "c");
        q.schedule(SimTime(10), "a");
        q.schedule(SimTime(20), "b");
        assert_eq!(q.pop().unwrap(), (SimTime(10), "a"));
        assert_eq!(q.pop().unwrap(), (SimTime(20), "b"));
        assert_eq!(q.pop().unwrap(), (SimTime(30), "c"));
        assert!(q.pop().is_none());
    }

    #[test]
    fn simultaneous_events_fire_fifo() {
        let mut q = EventQueue::new();
        for i in 0..10 {
            q.schedule(SimTime(5), i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn clock_advances_with_pops() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs_f64(1.0), ());
        assert_eq!(q.now(), SimTime::ZERO);
        q.pop();
        assert_eq!(q.now(), SimTime::from_secs_f64(1.0));
        // Scheduling relative to now works.
        q.schedule(q.now() + SimDuration::from_millis(1), ());
        assert_eq!(q.peek_time().unwrap(), SimTime(1_001_000));
    }

    #[test]
    #[should_panic(expected = "in the past")]
    fn scheduling_in_the_past_panics() {
        let mut q = EventQueue::new();
        q.schedule(SimTime(100), ());
        q.pop();
        q.schedule(SimTime(50), ());
    }

    #[test]
    fn len_and_empty() {
        let mut q: EventQueue<()> = EventQueue::new();
        assert!(q.is_empty());
        q.schedule(SimTime(1), ());
        assert_eq!(q.len(), 1);
    }
}
