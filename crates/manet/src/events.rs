//! The simulator's event queue: a hierarchical timer wheel keyed on
//! (time, sequence number), so simultaneous events fire in insertion
//! order — the property that makes runs reproducible.
//!
//! The wheel has 11 levels of 64 slots; level `l` buckets events by the
//! `l`-th base-64 digit of their microsecond timestamp, so the 66 digit
//! bits cover the entire `u64` time domain with no overflow list. An
//! event is filed at the highest level where its timestamp's digit
//! differs from the wheel cursor's; popping cascades the earliest
//! occupied high-level slot down until level 0 (the cursor's current
//! 64 µs window) holds the next event. Per-level occupancy bitmaps make
//! "earliest occupied slot" a `trailing_zeros`, so `schedule` is O(1)
//! and `pop` is amortized O(levels) — replacing the previous
//! `BinaryHeap`'s O(log n) comparisons per operation, which dominated
//! the engine at 1000+ devices where a broadcast burst schedules one
//! delivery per receiver.
//!
//! Ordering is identical to the heap it replaced: strictly by
//! `(at, seq)`. Two facts make the FIFO tie-break hold without ever
//! sorting: a level-0 slot only contains events from the cursor's
//! current window (one exact timestamp per slot), and every slot deque
//! receives entries in increasing `seq` order — direct schedules carry
//! globally increasing sequence numbers, and a cascade drains its
//! source deque front-to-back into entirely empty lower-level slots.

use crate::time::SimTime;
use std::collections::VecDeque;

/// Bits per wheel digit; each level has `2^SLOT_BITS` slots.
const SLOT_BITS: u32 = 6;
/// Slots per level.
const SLOTS: usize = 1 << SLOT_BITS;
/// Levels; `11 * 6 = 66 >= 64` bits, so any `u64` timestamp fits.
const LEVELS: usize = 11;

/// A scheduled event carrying a payload of type `E`.
struct Scheduled<E> {
    at: SimTime,
    seq: u64,
    payload: E,
}

/// Min-queue of timestamped events with stable FIFO tie-breaking.
pub struct EventQueue<E> {
    /// `LEVELS × SLOTS` deques, indexed `level * SLOTS + slot`.
    slots: Vec<VecDeque<Scheduled<E>>>,
    /// Per-level occupancy bitmap: bit `s` set ⇔ slot `s` is non-empty.
    occ: [u64; LEVELS],
    /// Wheel cursor. Invariants: `cur <= now.0`, every pending event has
    /// `at.0 >= cur`, and level 0 holds only events whose timestamp
    /// matches `cur` on all digits above digit 0. The cursor advances
    /// only inside [`pop`](Self::pop)'s cascade, never on peeks, so
    /// callers may peek, stop, and schedule more events at `now`
    /// without misfiling.
    cur: u64,
    len: usize,
    next_seq: u64,
    now: SimTime,
    /// Cached earliest pending timestamp, recomputed lazily on peek.
    peek: Option<SimTime>,
    peek_valid: bool,
}

/// Digit `level` of timestamp `t`.
fn digit(t: u64, level: usize) -> usize {
    ((t >> (SLOT_BITS * level as u32)) & (SLOTS as u64 - 1)) as usize
}

/// Highest level at which `t` differs from the cursor (0 when equal).
fn level_of(t: u64, cur: u64) -> usize {
    let diff = t ^ cur;
    if diff == 0 {
        0
    } else {
        (63 - diff.leading_zeros()) as usize / SLOT_BITS as usize
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        EventQueue {
            slots: (0..LEVELS * SLOTS).map(|_| VecDeque::new()).collect(),
            occ: [0; LEVELS],
            cur: 0,
            len: 0,
            next_seq: 0,
            now: SimTime::ZERO,
            peek: None,
            peek_valid: true,
        }
    }
}

impl<E> EventQueue<E> {
    /// Empty queue at time zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Current simulated time (the timestamp of the last popped event).
    pub fn now(&self) -> SimTime {
        self.now
    }

    fn file(&mut self, s: Scheduled<E>) {
        let level = level_of(s.at.0, self.cur);
        let slot = digit(s.at.0, level);
        self.occ[level] |= 1u64 << slot;
        let q = &mut self.slots[level * SLOTS + slot];
        // Every deque stays seq-sorted without comparisons: direct
        // schedules arrive in global seq order, cascades drain
        // front-to-back into empty lower slots.
        debug_assert!(q.back().is_none_or(|b| b.seq < s.seq));
        q.push_back(s);
    }

    /// Schedules `payload` at absolute time `at`.
    ///
    /// # Panics
    /// Panics when `at` lies in the past — scheduling backwards is always a
    /// logic error in a discrete-event simulation.
    pub fn schedule(&mut self, at: SimTime, payload: E) {
        assert!(at >= self.now, "event scheduled in the past ({at} < {})", self.now);
        if self.peek_valid {
            self.peek = Some(self.peek.map_or(at, |p| p.min(at)));
        }
        let s = Scheduled { at, seq: self.next_seq, payload };
        self.next_seq += 1;
        self.len += 1;
        self.file(s);
    }

    /// Cascades higher-level slots down until level 0 is occupied (or the
    /// wheel is empty). Advancing `cur` to the drained slot's window start
    /// keeps `at >= cur` for everything still pending: the drained slot
    /// was the earliest occupied one, so no event lives below its window.
    fn cascade(&mut self) {
        if self.occ[0] != 0 {
            return; // common case: the current window already has events
        }
        let mut span = sim_obs::span!("wheel::cascade");
        let mut refiled = 0u64;
        while self.occ[0] == 0 {
            let Some(level) = (1..LEVELS).find(|&l| self.occ[l] != 0) else { break };
            let slot = self.occ[level].trailing_zeros() as usize;
            let width = SLOT_BITS * level as u32;
            let above = match width + SLOT_BITS {
                64.. => 0,
                w => (self.cur >> w) << w,
            };
            self.cur = above | ((slot as u64) << width);
            self.occ[level] &= !(1u64 << slot);
            let mut drained = std::mem::take(&mut self.slots[level * SLOTS + slot]);
            refiled += drained.len() as u64;
            for s in drained.drain(..) {
                self.file(s);
            }
            // Hand the allocation back for the slot's next tenant.
            self.slots[level * SLOTS + slot] = drained;
        }
        span.add_units(refiled);
    }

    /// Pops the earliest event, advancing the clock to its timestamp.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        self.cascade();
        if self.occ[0] == 0 {
            return None;
        }
        let slot = self.occ[0].trailing_zeros() as usize;
        let q = &mut self.slots[slot];
        let s = q.pop_front().expect("occupied level-0 slot");
        if q.is_empty() {
            self.occ[0] &= !(1u64 << slot);
        }
        self.len -= 1;
        self.now = s.at;
        self.peek_valid = false;
        Some((s.at, s.payload))
    }

    /// Timestamp of the next event without popping it.
    pub fn peek_time(&mut self) -> Option<SimTime> {
        if !self.peek_valid {
            self.peek = self.earliest();
            self.peek_valid = true;
        }
        self.peek
    }

    /// Scans for the earliest pending timestamp without disturbing the
    /// wheel. Level 0 slots are exact timestamps in window order, so the
    /// lowest occupied slot's front is the minimum; at higher levels the
    /// lowest occupied slot of the lowest occupied level strictly bounds
    /// everything filed above it, but spans a `64^l` window, so its deque
    /// is scanned for the true minimum.
    fn earliest(&self) -> Option<SimTime> {
        if self.occ[0] != 0 {
            let slot = self.occ[0].trailing_zeros() as usize;
            return Some(self.slots[slot].front().expect("occupied level-0 slot").at);
        }
        for level in 1..LEVELS {
            if self.occ[level] == 0 {
                continue;
            }
            let slot = self.occ[level].trailing_zeros() as usize;
            return self.slots[level * SLOTS + slot].iter().map(|s| s.at).min();
        }
        None
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Number of occupied wheel slots across all levels — how spread-out
    /// the pending events are (a gauge input; one popcount per level).
    pub fn occupied_slots(&self) -> u32 {
        self.occ.iter().map(|b| b.count_ones()).sum()
    }

    /// `true` when nothing is scheduled.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime(30), "c");
        q.schedule(SimTime(10), "a");
        q.schedule(SimTime(20), "b");
        assert_eq!(q.pop().unwrap(), (SimTime(10), "a"));
        assert_eq!(q.pop().unwrap(), (SimTime(20), "b"));
        assert_eq!(q.pop().unwrap(), (SimTime(30), "c"));
        assert!(q.pop().is_none());
    }

    #[test]
    fn simultaneous_events_fire_fifo() {
        let mut q = EventQueue::new();
        for i in 0..10 {
            q.schedule(SimTime(5), i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn clock_advances_with_pops() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs_f64(1.0), ());
        assert_eq!(q.now(), SimTime::ZERO);
        q.pop();
        assert_eq!(q.now(), SimTime::from_secs_f64(1.0));
        // Scheduling relative to now works.
        q.schedule(q.now() + SimDuration::from_millis(1), ());
        assert_eq!(q.peek_time().unwrap(), SimTime(1_001_000));
    }

    #[test]
    #[should_panic(expected = "in the past")]
    fn scheduling_in_the_past_panics() {
        let mut q = EventQueue::new();
        q.schedule(SimTime(100), ());
        q.pop();
        q.schedule(SimTime(50), ());
    }

    #[test]
    fn len_and_empty() {
        let mut q: EventQueue<()> = EventQueue::new();
        assert!(q.is_empty());
        q.schedule(SimTime(1), ());
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn occupied_slots_tracks_spread() {
        let mut q: EventQueue<()> = EventQueue::new();
        assert_eq!(q.occupied_slots(), 0);
        q.schedule(SimTime(1), ());
        q.schedule(SimTime(1), ()); // same slot
        assert_eq!(q.occupied_slots(), 1);
        q.schedule(SimTime(2), ()); // second level-0 slot
        q.schedule(SimTime(1 << 30), ()); // a high-level slot
        assert_eq!(q.occupied_slots(), 3);
        while q.pop().is_some() {}
        assert_eq!(q.occupied_slots(), 0);
    }

    #[test]
    fn far_future_events_cross_all_levels() {
        // Timestamps spanning every wheel level, including the top digit.
        let mut q = EventQueue::new();
        let times = [u64::MAX, 1, 0, 63, 64, 65, 4095, 4096, 1 << 40, (1 << 40) + 1, 1 << 63];
        for (i, &t) in times.iter().enumerate() {
            q.schedule(SimTime(t), i);
        }
        let mut sorted: Vec<u64> = times.to_vec();
        sorted.sort_unstable();
        let popped: Vec<u64> = std::iter::from_fn(|| q.pop().map(|(t, _)| t.0)).collect();
        assert_eq!(popped, sorted);
    }

    #[test]
    fn peek_does_not_disturb_scheduling_at_now() {
        // The engine peeks, stops at a horizon, and later schedules more
        // events at times >= now. A peek must not advance the cursor.
        let mut q = EventQueue::new();
        q.schedule(SimTime(10), "a");
        q.schedule(SimTime(100_000), "far");
        assert_eq!(q.peek_time(), Some(SimTime(10)));
        assert_eq!(q.pop().unwrap(), (SimTime(10), "a"));
        assert_eq!(q.peek_time(), Some(SimTime(100_000)));
        // now == 10: scheduling just above now must still order correctly.
        q.schedule(SimTime(11), "b");
        assert_eq!(q.peek_time(), Some(SimTime(11)));
        assert_eq!(q.pop().unwrap(), (SimTime(11), "b"));
        assert_eq!(q.pop().unwrap(), (SimTime(100_000), "far"));
    }

    #[test]
    fn interleaved_schedule_and_pop_preserve_fifo() {
        // Same-tick events scheduled across pops of earlier ticks must
        // still come out in insertion order.
        let mut q = EventQueue::new();
        q.schedule(SimTime(50), 0);
        q.schedule(SimTime(50), 1);
        q.schedule(SimTime(20), 100);
        assert_eq!(q.pop().unwrap(), (SimTime(20), 100));
        q.schedule(SimTime(50), 2);
        q.schedule(SimTime(50), 3);
        let tail: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(tail, vec![0, 1, 2, 3]);
    }

    /// The queue this wheel replaced, kept as the ordering oracle.
    struct HeapOracle {
        heap: std::collections::BinaryHeap<(std::cmp::Reverse<(SimTime, u64)>, u32)>,
        next_seq: u64,
        now: SimTime,
    }

    impl HeapOracle {
        fn new() -> Self {
            HeapOracle {
                heap: std::collections::BinaryHeap::new(),
                next_seq: 0,
                now: SimTime::ZERO,
            }
        }
        fn schedule(&mut self, at: SimTime, payload: u32) {
            self.heap.push((std::cmp::Reverse((at, self.next_seq)), payload));
            self.next_seq += 1;
        }
        fn pop(&mut self) -> Option<(SimTime, u32)> {
            let (std::cmp::Reverse((at, _)), payload) = self.heap.pop()?;
            self.now = at;
            Some((at, payload))
        }
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(128))]

            /// Random interleavings of schedules (with same-tick bursts and
            /// far-future deltas) and pops match the BinaryHeap oracle
            /// event for event.
            #[test]
            fn wheel_matches_heap_oracle(
                ops in prop::collection::vec((0u8..9, 0u64..200_000), 1..400),
            ) {
                let mut wheel = EventQueue::new();
                let mut oracle = HeapOracle::new();
                let mut tag = 0u32;
                for (kind, raw) in ops {
                    // Schedule `now + delta`; deltas span slot, level and
                    // multi-level boundaries, plus exact same-tick ties.
                    let delta = match kind {
                        0 | 1 => Some(raw),
                        2 => Some(0),
                        3 => Some(63),
                        4 => Some(64),
                        5 => Some(4096),
                        6 => Some(1 << 30),
                        _ => None, // pop
                    };
                    match delta {
                        Some(delta) => {
                            let at = SimTime(oracle.now.0 + delta);
                            wheel.schedule(at, tag);
                            oracle.schedule(at, tag);
                            tag += 1;
                        }
                        None => {
                            prop_assert_eq!(wheel.peek_time(), oracle.heap.peek().map(|(std::cmp::Reverse((at, _)), _)| *at));
                            prop_assert_eq!(wheel.pop(), oracle.pop());
                        }
                    }
                }
                // Drain both fully; the tails must agree too.
                loop {
                    let (w, o) = (wheel.pop(), oracle.pop());
                    prop_assert_eq!(w, o);
                    if w.is_none() {
                        break;
                    }
                }
                prop_assert!(wheel.is_empty());
            }
        }
    }
}
