//! Frame and packet types shared by the link layer, AODV, and the
//! application interface.

/// Node identifier (dense, assigned by insertion order).
pub type NodeId = usize;

/// An application payload travelling end-to-end.
#[derive(Debug, Clone)]
pub struct DataPacket<P> {
    /// Originating node.
    pub src: NodeId,
    /// Final destination.
    pub dst: NodeId,
    /// Per-source packet id (diagnostics).
    pub id: u64,
    /// Hops travelled so far (incremented at each receiving node). Lets
    /// relays install gratuitous reverse routes toward `src` with an
    /// honest metric, and caps routing loops; rides in the existing
    /// link-layer header (the IP TTL slot), so it adds no wire bytes.
    pub hops: u32,
    /// The application payload.
    pub payload: P,
    /// Payload size on the wire (bytes).
    pub bytes: usize,
}

/// AODV control messages (RFC 3561 core fields).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AodvMessage {
    /// Route request, flooded.
    Rreq {
        /// (origin, rreq_id) uniquely identifies a flood.
        rreq_id: u64,
        /// Node searching for a route.
        origin: NodeId,
        /// Origin's sequence number at flood time.
        origin_seq: u64,
        /// Node being searched for.
        dst: NodeId,
        /// Hops travelled so far.
        hop_count: u32,
    },
    /// Route reply, unicast hop-by-hop back along the reverse path.
    Rrep {
        /// The node that asked (RREQ origin).
        origin: NodeId,
        /// The node the route leads to.
        dst: NodeId,
        /// Destination sequence number.
        dst_seq: u64,
        /// Hops from `dst` so far.
        hop_count: u32,
    },
    /// Route error: `dst` became unreachable through the sender.
    Rerr {
        /// The now-unreachable destination.
        dst: NodeId,
        /// Destination sequence number to invalidate up to.
        dst_seq: u64,
    },
}

impl AodvMessage {
    /// Wire size (RFC 3561 message sizes).
    pub fn bytes(&self) -> usize {
        match self {
            AodvMessage::Rreq { .. } => 24,
            AodvMessage::Rrep { .. } => 20,
            AodvMessage::Rerr { .. } => 12,
        }
    }
}

/// A link-layer frame.
#[derive(Debug, Clone)]
pub enum Frame<P> {
    /// AODV control traffic.
    Aodv(AodvMessage),
    /// Routed application data.
    Data(DataPacket<P>),
    /// One-hop application broadcast (not routed).
    Bcast {
        /// Originating (and transmitting) node.
        src: NodeId,
        /// Application payload.
        payload: P,
        /// Payload size (bytes).
        bytes: usize,
    },
    /// Link-layer hello beacon (neighbour discovery, no payload).
    Hello,
}

/// Link-layer header charged on top of every frame's payload bytes.
pub const FRAME_HEADER_BYTES: usize = 20;

impl<P> Frame<P> {
    /// Total bytes on the air.
    pub fn bytes(&self) -> usize {
        FRAME_HEADER_BYTES
            + match self {
                Frame::Aodv(m) => m.bytes(),
                Frame::Data(p) => p.bytes,
                Frame::Bcast { bytes, .. } => *bytes,
                Frame::Hello => 4,
            }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frame_sizes_include_header() {
        let f: Frame<()> = Frame::Aodv(AodvMessage::Rreq {
            rreq_id: 1,
            origin: 0,
            origin_seq: 1,
            dst: 2,
            hop_count: 0,
        });
        assert_eq!(f.bytes(), 44);
        let d: Frame<()> =
            Frame::Data(DataPacket { src: 0, dst: 1, id: 0, hops: 0, payload: (), bytes: 100 });
        assert_eq!(d.bytes(), 120);
        let b: Frame<()> = Frame::Bcast { src: 0, payload: (), bytes: 50 };
        assert_eq!(b.bytes(), 70);
        let h: Frame<()> = Frame::Hello;
        assert_eq!(h.bytes(), 24);
    }

    #[test]
    fn control_message_sizes() {
        assert_eq!(AodvMessage::Rrep { origin: 0, dst: 1, dst_seq: 0, hop_count: 0 }.bytes(), 20);
        assert_eq!(AodvMessage::Rerr { dst: 0, dst_seq: 0 }.bytes(), 12);
    }
}
