//! The wireless link model: unit-disk connectivity with a
//! bandwidth + latency + jitter delay model.
//!
//! The paper does not state radio parameters; the defaults follow common
//! 802.11b MANET-simulation practice (250 m nominal range, ~1 Mbit/s
//! effective payload rate) and are fully configurable. See DESIGN.md for the
//! substitution note.

use rand::rngs::StdRng;
use rand::Rng;

use crate::mobility::Pos;
use crate::time::SimDuration;

/// Per-frame energy model, after the point-to-point 802.11 measurements of
/// Feeney & Nilsson (INFOCOM 2001): linear in frame size with a fixed
/// per-frame component, different for send and receive. The paper motivates
/// its techniques with the devices' energy constraints; this model makes
/// the saving measurable.
#[derive(Debug, Clone, Copy)]
pub struct EnergyConfig {
    /// Energy to transmit one byte (µJ).
    pub tx_uj_per_byte: f64,
    /// Fixed per-transmission cost (µJ).
    pub tx_fixed_uj: f64,
    /// Energy to receive one byte (µJ).
    pub rx_uj_per_byte: f64,
    /// Fixed per-reception cost (µJ).
    pub rx_fixed_uj: f64,
}

impl Default for EnergyConfig {
    fn default() -> Self {
        EnergyConfig {
            tx_uj_per_byte: 1.9,
            tx_fixed_uj: 450.0,
            rx_uj_per_byte: 0.5,
            rx_fixed_uj: 350.0,
        }
    }
}

impl EnergyConfig {
    /// Joules to transmit a frame of `bytes` bytes.
    pub fn tx_joules(&self, bytes: usize) -> f64 {
        (self.tx_fixed_uj + self.tx_uj_per_byte * bytes as f64) * 1e-6
    }

    /// Joules to receive a frame of `bytes` bytes.
    pub fn rx_joules(&self, bytes: usize) -> f64 {
        (self.rx_fixed_uj + self.rx_uj_per_byte * bytes as f64) * 1e-6
    }
}

/// How reception success depends on distance.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Propagation {
    /// Binary unit-disk: every frame within `range_m` arrives, nothing
    /// beyond. The JiST/SWANS default and this simulator's default.
    UnitDisk,
    /// Log-distance path loss with log-normal shadowing: the received
    /// margin is `10·n·log10(range/d) + N(0, σ)` dB and the frame arrives
    /// iff the margin is non-negative. Smooths the disk edge: frames
    /// slightly beyond nominal range sometimes arrive, frames inside
    /// sometimes fade. `σ = 0` degenerates to the unit disk.
    LogDistance {
        /// Path-loss exponent `n` (2 = free space, 3–4 = urban).
        exponent: f64,
        /// Shadowing standard deviation in dB.
        sigma_db: f64,
    },
}

/// Radio and link-layer parameters.
#[derive(Debug, Clone, Copy)]
pub struct RadioConfig {
    /// Transmission range (m). Two nodes are neighbours iff within range.
    pub range_m: f64,
    /// Effective payload bandwidth (bits/s).
    pub bandwidth_bps: f64,
    /// Fixed per-frame latency (propagation + MAC overhead).
    pub latency: SimDuration,
    /// Uniform extra delay in `[0, jitter)` modelling MAC contention.
    pub jitter: SimDuration,
    /// Independent per-frame loss probability (besides range failures).
    pub loss_probability: f64,
    /// Energy accounting model.
    pub energy: EnergyConfig,
    /// Propagation model deciding per-frame reception.
    pub propagation: Propagation,
}

impl Default for RadioConfig {
    fn default() -> Self {
        RadioConfig {
            range_m: 250.0,
            bandwidth_bps: 1.0e6,
            latency: SimDuration::from_millis(2),
            jitter: SimDuration::from_micros(500),
            loss_probability: 0.0,
            energy: EnergyConfig::default(),
            propagation: Propagation::UnitDisk,
        }
    }
}

impl RadioConfig {
    /// `true` when two positions can hear each other.
    #[inline]
    pub fn in_range(&self, a: Pos, b: Pos) -> bool {
        a.dist2(b) <= self.range_m * self.range_m
    }

    /// Air time for a frame of `bytes` bytes, including jitter.
    pub fn tx_delay(&self, bytes: usize, rng: &mut StdRng) -> SimDuration {
        let serialization = SimDuration::from_secs_f64(bytes as f64 * 8.0 / self.bandwidth_bps);
        let jitter = if self.jitter.0 > 0 {
            SimDuration(rng.random_range(0..self.jitter.0))
        } else {
            SimDuration::ZERO
        };
        self.latency + serialization + jitter
    }

    /// `true` when the frame is dropped by random loss.
    pub fn lost(&self, rng: &mut StdRng) -> bool {
        self.loss_probability > 0.0 && rng.random_range(0.0..1.0) < self.loss_probability
    }

    /// `true` when [`frame_received`](Self::frame_received) is a pure
    /// function of the two positions — equal to `in_range`, drawing no
    /// randomness per candidate. Only then may broadcast receiver sets be
    /// pruned spatially without perturbing the deterministic RNG stream.
    pub fn deterministic_reception(&self) -> bool {
        matches!(self.propagation, Propagation::UnitDisk)
    }

    /// Per-frame reception decision between two positions, under the
    /// configured propagation model. Neighbour *discovery* keeps using the
    /// deterministic [`RadioConfig::in_range`]; this gate applies to actual
    /// frames, so under shadowing a "neighbour" can still fade.
    pub fn frame_received(&self, a: Pos, b: Pos, rng: &mut StdRng) -> bool {
        match self.propagation {
            Propagation::UnitDisk => self.in_range(a, b),
            Propagation::LogDistance { exponent, sigma_db } => {
                let d = a.dist(b).max(1.0);
                let margin =
                    10.0 * exponent * (self.range_m / d).log10() + gaussian(rng) * sigma_db;
                margin >= 0.0
            }
        }
    }
}

/// Standard-normal sample via Box–Muller.
fn gaussian(rng: &mut StdRng) -> f64 {
    let u1: f64 = rng.random_range(f64::EPSILON..1.0);
    let u2: f64 = rng.random_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn range_check_is_symmetric() {
        let r = RadioConfig::default();
        let a = Pos::new(0.0, 0.0);
        let b = Pos::new(250.0, 0.0);
        let c = Pos::new(250.1, 0.0);
        assert!(r.in_range(a, b) && r.in_range(b, a));
        assert!(!r.in_range(a, c));
    }

    #[test]
    fn tx_delay_scales_with_size() {
        let cfg = RadioConfig { jitter: SimDuration::ZERO, ..RadioConfig::default() };
        let mut rng = StdRng::seed_from_u64(0);
        let small = cfg.tx_delay(100, &mut rng);
        let large = cfg.tx_delay(10_000, &mut rng);
        assert!(large > small);
        // 10 kB at 1 Mbit/s = 80 ms + 2 ms latency.
        assert_eq!(large.as_secs_f64(), 0.082);
    }

    #[test]
    fn jitter_bounded() {
        let cfg = RadioConfig::default();
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..100 {
            let d = cfg.tx_delay(0, &mut rng);
            assert!(d >= cfg.latency);
            assert!(d < cfg.latency + cfg.jitter);
        }
    }

    #[test]
    fn loss_probability_zero_never_drops() {
        let cfg = RadioConfig::default();
        let mut rng = StdRng::seed_from_u64(5);
        assert!((0..1000).all(|_| !cfg.lost(&mut rng)));
    }

    #[test]
    fn unit_disk_frame_reception_equals_range() {
        let cfg = RadioConfig::default();
        let mut rng = StdRng::seed_from_u64(1);
        let a = Pos::new(0.0, 0.0);
        assert!(cfg.frame_received(a, Pos::new(249.0, 0.0), &mut rng));
        assert!(!cfg.frame_received(a, Pos::new(251.0, 0.0), &mut rng));
    }

    #[test]
    fn log_distance_without_shadowing_matches_unit_disk() {
        let cfg = RadioConfig {
            propagation: Propagation::LogDistance { exponent: 3.0, sigma_db: 0.0 },
            ..RadioConfig::default()
        };
        let mut rng = StdRng::seed_from_u64(2);
        let a = Pos::new(0.0, 0.0);
        assert!(cfg.frame_received(a, Pos::new(249.0, 0.0), &mut rng));
        assert!(!cfg.frame_received(a, Pos::new(251.0, 0.0), &mut rng));
    }

    #[test]
    fn shadowing_softens_the_disk_edge() {
        let cfg = RadioConfig {
            propagation: Propagation::LogDistance { exponent: 3.0, sigma_db: 6.0 },
            ..RadioConfig::default()
        };
        let mut rng = StdRng::seed_from_u64(3);
        let a = Pos::new(0.0, 0.0);
        let rate = |d: f64, rng: &mut StdRng| {
            (0..2000).filter(|_| cfg.frame_received(a, Pos::new(d, 0.0), rng)).count() as f64
                / 2000.0
        };
        let near = rate(100.0, &mut rng);
        let edge = rate(250.0, &mut rng);
        let far = rate(600.0, &mut rng);
        assert!(near > 0.9, "close frames almost always arrive ({near})");
        assert!((0.3..0.7).contains(&edge), "the nominal edge is a coin flip ({edge})");
        assert!(far < 0.1, "far frames rarely arrive ({far})");
        assert!(near > edge && edge > far);
    }

    #[test]
    fn loss_probability_one_always_drops() {
        let cfg = RadioConfig { loss_probability: 1.0, ..RadioConfig::default() };
        let mut rng = StdRng::seed_from_u64(5);
        assert!((0..100).all(|_| cfg.lost(&mut rng)));
    }
}
