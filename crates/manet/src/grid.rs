//! Deterministic spatial hash grid for O(degree) neighbour discovery.
//!
//! The engine's oracle neighbour queries and unit-disk broadcasts used to
//! scan every node's position per call — O(n) per query, O(n) per event
//! for the position refresh feeding it, and the simulator's dominant cost
//! beyond a few hundred nodes. [`SpatialGrid`] buckets node ids by cell
//! (cell edge = radio range) over a *bounded-staleness* position snapshot:
//! the engine refreshes the snapshot in periodic sweeps and widens each
//! query box by the maximum drift since the last sweep, so the grid yields
//! a guaranteed superset of the true in-range set; an exact re-filter with
//! fresh positions then reproduces the brute-force answer bit-for-bit.
//!
//! Determinism: buckets are only ever addressed by key (the `HashMap`'s
//! iteration order is never observed), bucket contents are kept sorted by
//! node id, and query results are sorted before return — identical runs
//! produce identical candidate orders regardless of hash seeding.

use std::collections::HashMap;

use crate::mobility::Pos;
use crate::packet::NodeId;

/// A uniform grid over node positions; see the module docs.
#[derive(Debug, Clone)]
pub struct SpatialGrid {
    /// Cell edge length (m).
    cell: f64,
    /// Cell → node ids inside it, each bucket sorted ascending.
    buckets: HashMap<(i64, i64), Vec<NodeId>>,
    /// Per-node current cell (indexed by node id).
    node_cell: Vec<(i64, i64)>,
}

impl SpatialGrid {
    /// A grid with the given cell edge (use the radio range so one-hop
    /// neighbours span at most a 3×3 cell block plus drift).
    ///
    /// # Panics
    /// Panics on a non-positive or non-finite cell size.
    pub fn new(cell: f64) -> Self {
        assert!(cell > 0.0 && cell.is_finite(), "invalid grid cell size {cell}");
        SpatialGrid { cell, buckets: HashMap::new(), node_cell: Vec::new() }
    }

    /// Number of tracked nodes.
    pub fn len(&self) -> usize {
        self.node_cell.len()
    }

    /// `true` when no node is tracked.
    pub fn is_empty(&self) -> bool {
        self.node_cell.is_empty()
    }

    fn cell_of(&self, p: Pos) -> (i64, i64) {
        ((p.x / self.cell).floor() as i64, (p.y / self.cell).floor() as i64)
    }

    /// Registers the next node (ids must arrive densely, in order) at `p`.
    ///
    /// # Panics
    /// Panics when `node` is not the next unused id.
    pub fn insert(&mut self, node: NodeId, p: Pos) {
        assert_eq!(node, self.node_cell.len(), "nodes must be inserted in id order");
        let c = self.cell_of(p);
        self.node_cell.push(c);
        Self::bucket_add(self.buckets.entry(c).or_default(), node);
    }

    /// Moves `node` to position `p`, rebucketing only on a cell change.
    pub fn update(&mut self, node: NodeId, p: Pos) {
        let c = self.cell_of(p);
        let old = self.node_cell[node];
        if c == old {
            return;
        }
        if let Some(b) = self.buckets.get_mut(&old) {
            if let Ok(i) = b.binary_search(&node) {
                b.remove(i);
            }
            if b.is_empty() {
                self.buckets.remove(&old);
            }
        }
        self.node_cell[node] = c;
        Self::bucket_add(self.buckets.entry(c).or_default(), node);
    }

    fn bucket_add(bucket: &mut Vec<NodeId>, node: NodeId) {
        let at = bucket.partition_point(|&n| n < node);
        bucket.insert(at, node);
    }

    /// Collects into `out` (cleared first) every node whose *snapshot*
    /// position may lie within `radius` of `center`, sorted ascending by
    /// id. The box covers `radius` in the Chebyshev metric, so it is a
    /// superset of the Euclidean ball; callers re-filter with exact
    /// positions.
    pub fn query_into(&self, center: Pos, radius: f64, out: &mut Vec<NodeId>) {
        let mut span = sim_obs::span!("grid::query");
        out.clear();
        let lo = self.cell_of(Pos::new(center.x - radius, center.y - radius));
        let hi = self.cell_of(Pos::new(center.x + radius, center.y + radius));
        for cx in lo.0..=hi.0 {
            for cy in lo.1..=hi.1 {
                if let Some(b) = self.buckets.get(&(cx, cy)) {
                    out.extend_from_slice(b);
                }
            }
        }
        out.sort_unstable();
        span.add_units(out.len() as u64);
    }

    /// Number of non-empty cells (a gauge input).
    pub fn occupied_cells(&self) -> usize {
        self.buckets.len()
    }

    /// Largest bucket's population — the local-density hotspot a query
    /// pays for (a gauge input).
    pub fn max_bucket_len(&self) -> usize {
        self.buckets.values().map(Vec::len).max().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Deterministic scatter of n positions inside a w × h area.
    fn scatter(n: usize, w: f64, h: f64, seed: u64) -> Vec<Pos> {
        let mut state = seed | 1;
        let mut next = || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            (state >> 11) as f64 / (1u64 << 53) as f64
        };
        (0..n).map(|_| Pos::new(next() * w, next() * h)).collect()
    }

    fn brute_force(positions: &[Pos], center: Pos, radius: f64) -> Vec<NodeId> {
        positions
            .iter()
            .enumerate()
            .filter(|(_, p)| p.dist2(center) <= radius * radius)
            .map(|(i, _)| i)
            .collect()
    }

    #[test]
    fn query_is_a_sorted_superset_of_the_euclidean_ball() {
        let positions = scatter(300, 1000.0, 1000.0, 0xC0FFEE);
        let mut grid = SpatialGrid::new(250.0);
        for (i, &p) in positions.iter().enumerate() {
            grid.insert(i, p);
        }
        let mut out = Vec::new();
        for &center in positions.iter().step_by(7) {
            grid.query_into(center, 250.0, &mut out);
            assert!(out.windows(2).all(|w| w[0] < w[1]), "sorted, duplicate-free");
            for id in brute_force(&positions, center, 250.0) {
                assert!(out.contains(&id), "grid missed in-range node {id}");
            }
        }
    }

    #[test]
    fn update_rebuckets_across_cells() {
        let mut grid = SpatialGrid::new(100.0);
        grid.insert(0, Pos::new(50.0, 50.0));
        grid.insert(1, Pos::new(950.0, 950.0));
        let mut out = Vec::new();
        grid.query_into(Pos::new(50.0, 50.0), 10.0, &mut out);
        assert_eq!(out, vec![0]);
        // Move node 1 next to node 0; it must appear in local queries.
        grid.update(1, Pos::new(55.0, 55.0));
        grid.query_into(Pos::new(50.0, 50.0), 10.0, &mut out);
        assert_eq!(out, vec![0, 1]);
        // And vanish from its old area.
        grid.query_into(Pos::new(950.0, 950.0), 10.0, &mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn update_within_a_cell_is_a_noop_rebucket() {
        let mut grid = SpatialGrid::new(100.0);
        grid.insert(0, Pos::new(10.0, 10.0));
        grid.update(0, Pos::new(20.0, 20.0)); // same cell
        let mut out = Vec::new();
        grid.query_into(Pos::new(15.0, 15.0), 50.0, &mut out);
        assert_eq!(out, vec![0]);
    }

    #[test]
    fn negative_coordinates_bucket_correctly() {
        // floor() (not truncation) keeps cells around the origin distinct.
        let mut grid = SpatialGrid::new(100.0);
        grid.insert(0, Pos::new(-5.0, -5.0));
        grid.insert(1, Pos::new(5.0, 5.0));
        let mut out = Vec::new();
        grid.query_into(Pos::new(0.0, 0.0), 20.0, &mut out);
        assert_eq!(out, vec![0, 1]);
    }

    #[test]
    fn moving_query_tracks_brute_force_under_churn() {
        let mut positions = scatter(120, 500.0, 500.0, 42);
        let mut grid = SpatialGrid::new(60.0);
        for (i, &p) in positions.iter().enumerate() {
            grid.insert(i, p);
        }
        let drift = scatter(120, 90.0, 90.0, 7);
        for round in 0..5 {
            for i in 0..positions.len() {
                positions[i] = Pos::new(
                    (positions[i].x + drift[i].x) % 500.0,
                    (positions[i].y + drift[i].y) % 500.0,
                );
                grid.update(i, positions[i]);
            }
            let mut out = Vec::new();
            for &center in positions.iter().step_by(11) {
                grid.query_into(center, 60.0, &mut out);
                for id in brute_force(&positions, center, 60.0) {
                    assert!(out.contains(&id), "round {round}: missed {id}");
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "id order")]
    fn out_of_order_insert_rejected() {
        let mut grid = SpatialGrid::new(100.0);
        grid.insert(1, Pos::new(0.0, 0.0));
    }
}
