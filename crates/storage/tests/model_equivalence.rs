//! Property tests: all four storage models answer every local query
//! identically (modulo tuple order), and the hybrid fast paths (skip
//! checks, ID comparisons) never change answers.

use proptest::prelude::*;
use skyline_core::region::{Point, QueryRegion};
use skyline_core::vdr::{FilterTest, FilterTuple, UpperBounds};
use skyline_core::{DominanceTest, Tuple};

use device_storage::{
    DeviceRelation, DomainRelation, FlatRelation, HybridRelation, LocalQuery, RingRelation,
    SpatialRelation,
};

fn relation(max: usize, dim: usize) -> impl Strategy<Value = Vec<Tuple>> {
    prop::collection::vec(prop::collection::vec(0u8..25, dim), 0..max).prop_map(|rows| {
        rows.into_iter()
            .enumerate()
            .map(|(i, attrs)| {
                Tuple::new(
                    (i % 20) as f64,
                    (i / 20) as f64,
                    attrs.into_iter().map(f64::from).collect(),
                )
            })
            .collect()
    })
}

fn query(dim: usize) -> impl Strategy<Value = LocalQuery> {
    (
        0.0f64..20.0,
        0.0f64..5.0,
        prop::option::of((1.0f64..60.0, prop::collection::vec(0u8..25, dim))),
        any::<bool>(),
    )
        .prop_map(move |(cx, cy, r_and_filter, strict)| {
            let (radius, filter) = match r_and_filter {
                Some((r, f)) => (
                    r,
                    Some(FilterTuple::new(
                        f.into_iter().map(f64::from).collect(),
                        &UpperBounds::new(vec![25.0; dim]),
                    )),
                ),
                None => (f64::INFINITY, None),
            };
            LocalQuery {
                filter,
                filter_test: if strict { FilterTest::StrictAll } else { FilterTest::Dominance },
                vdr_bounds: Some(UpperBounds::new(vec![25.0; dim])),
                ..LocalQuery::plain(QueryRegion::new(Point::new(cx, cy), radius))
            }
        })
}

fn sorted_keys(tuples: Vec<Tuple>) -> Vec<(u64, u64)> {
    let mut keys: Vec<(u64, u64)> =
        tuples.into_iter().map(|t| (t.x.to_bits(), t.y.to_bits())).collect();
    keys.sort_unstable();
    keys
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn all_models_agree(data in relation(50, 3), q in query(3)) {
        let flat = FlatRelation::new(data.clone());
        let hybrid = HybridRelation::new(data.clone());
        let domain = DomainRelation::new(data.clone());
        let ring = RingRelation::new(data.clone());
        let spatial = SpatialRelation::new(data);

        let expect = sorted_keys(flat.local_skyline(&q).skyline);
        prop_assert_eq!(sorted_keys(hybrid.local_skyline(&q).skyline), expect.clone(), "hybrid");
        prop_assert_eq!(sorted_keys(domain.local_skyline(&q).skyline), expect.clone(), "domain");
        prop_assert_eq!(sorted_keys(ring.local_skyline(&q).skyline), expect.clone(), "ring");
        prop_assert_eq!(sorted_keys(spatial.local_skyline(&q).skyline), expect, "spatial");
    }

    #[test]
    fn skip_fast_path_is_sound(data in relation(50, 2), q in query(2)) {
        // When hybrid skips (filter dominates the domain minima), the flat
        // answer after filter application must be empty too.
        let hybrid = HybridRelation::new(data.clone());
        let out = hybrid.local_skyline(&q);
        if out.skipped && !q.region.misses(hybrid.mbr()) {
            let flat = FlatRelation::new(data);
            let ref_out = flat.local_skyline(&q);
            prop_assert!(ref_out.skyline.is_empty(),
                "hybrid skipped but flat found {} tuples", ref_out.skyline.len());
        }
    }

    #[test]
    fn paper_strict_scan_is_superset_of_full(data in relation(50, 3)) {
        let hybrid = HybridRelation::new(data);
        let mut q = LocalQuery::plain(QueryRegion::unbounded());
        q.dominance = DominanceTest::Full;
        let full = sorted_keys(hybrid.local_skyline(&q).skyline);
        q.dominance = DominanceTest::PaperStrict;
        let strict = sorted_keys(hybrid.local_skyline(&q).skyline);
        for k in &full {
            prop_assert!(strict.binary_search(k).is_ok(), "strict scan lost a true member");
        }
    }

    #[test]
    fn unreduced_len_bounds_reduced_len(data in relation(50, 2), q in query(2)) {
        let hybrid = HybridRelation::new(data);
        let out = hybrid.local_skyline(&q);
        prop_assert!(out.skyline.len() <= out.unreduced_len);
        if q.filter.is_none() {
            prop_assert_eq!(out.skyline.len(), out.unreduced_len);
        }
    }

    #[test]
    fn storage_round_trip(data in relation(50, 4)) {
        let hybrid = HybridRelation::new(data.clone());
        let domain = DomainRelation::new(data.clone());
        let ring = RingRelation::new(data.clone());

        // Hybrid reorders rows; compare as multisets of attribute vectors.
        let canon = |mut v: Vec<Vec<f64>>| { v.sort_by(|a, b| a.partial_cmp(b).unwrap()); v };
        let src = canon(data.iter().map(|t| t.attrs.clone()).collect());
        let h: Vec<Vec<f64>> = (0..hybrid.len()).map(|r| hybrid.tuple(r).attrs).collect();
        prop_assert_eq!(canon(h), src.clone());
        // Domain and ring preserve row order exactly.
        for (i, t) in data.iter().enumerate() {
            prop_assert_eq!(&domain.tuple(i).attrs, &t.attrs);
            prop_assert_eq!(&ring.tuple(i).attrs, &t.attrs);
        }
    }

    #[test]
    fn binary_image_round_trips(data in relation(80, 3)) {
        let img = device_storage::encode_relation(&data);
        let back = device_storage::decode_relation(&img).expect("own image is valid");
        prop_assert_eq!(back, data);
    }

    #[test]
    fn decoder_never_panics_on_corruption(data in relation(20, 2), flip in 0usize..2048, val in 0u8..=255u8) {
        let mut img = device_storage::encode_relation(&data);
        if !img.is_empty() {
            let i = flip % img.len();
            img[i] = val;
            // Any outcome is fine except a panic; if it decodes, the result
            // must still be structurally sound (schema-consistent).
            if let Ok(ts) = device_storage::decode_relation(&img) {
                let dim = ts.first().map_or(0, |t| t.dim());
                prop_assert!(ts.iter().all(|t| t.dim() == dim));
            }
        }
    }

    #[test]
    fn hybrid_bounds_match_scan(data in relation(50, 3)) {
        prop_assume!(!data.is_empty());
        let hybrid = HybridRelation::new(data.clone());
        let lower = hybrid.lower_bounds().unwrap();
        let upper = hybrid.upper_bounds().unwrap().0;
        for j in 0..3 {
            let min = data.iter().map(|t| t.attrs[j]).fold(f64::INFINITY, f64::min);
            let max = data.iter().map(|t| t.attrs[j]).fold(f64::NEG_INFINITY, f64::max);
            prop_assert_eq!(lower[j], min);
            prop_assert_eq!(upper[j], max);
        }
    }
}
