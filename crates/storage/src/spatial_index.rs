//! Spatially indexed storage — the "what if the device *did* have an
//! index?" ablation.
//!
//! The paper evaluates flat and hybrid storage under the assumption that
//! "no extra index is used" on a mobile device (Section 5.1). This model
//! drops that assumption: sites are indexed by an STR-packed R-tree over
//! their locations, so the spatial constraint is answered in
//! `O(log n + k)` instead of a full scan, and the skyline then runs
//! SFS-style over the `k` in-range tuples only. The `storage_ablation`
//! bench quantifies how much the paper's no-index assumption costs for
//! small query radii — and how little for unbounded queries, where the
//! index degenerates to a scan with extra overhead.

use skyline_core::dominance::dominates;
use skyline_core::region::{Mbr, QueryRegion};
use skyline_core::rtree::{NdBox, RTree};
use skyline_core::vdr::{select_filter, FilterTuple, UpperBounds};
use skyline_core::Tuple;

use crate::traits::{DeviceRelation, LocalQuery, LocalSkylineOutcome, LocalStats, StorageModel};

/// A local relation with a spatial R-tree over site locations.
#[derive(Debug)]
pub struct SpatialRelation {
    tuples: Vec<Tuple>,
    tree: RTree,
    mbr: Mbr,
    dim: usize,
}

impl SpatialRelation {
    /// Builds the relation and its location index.
    pub fn new(tuples: Vec<Tuple>) -> Self {
        let dim = tuples.first().map_or(0, Tuple::dim);
        assert!(tuples.iter().all(|t| t.dim() == dim), "mixed dimensionality in relation");
        let locs: Vec<Vec<f64>> = tuples.iter().map(|t| vec![t.x, t.y]).collect();
        let tree = RTree::bulk_load(&locs);
        let mbr = Mbr::of_points(tuples.iter().map(Tuple::location));
        SpatialRelation { tuples, tree, mbr, dim }
    }

    /// Indices of tuples within the query region, via the R-tree. Counts
    /// candidate visits into `stats` (the index's work measure).
    fn in_range(&self, region: &QueryRegion, stats: &mut LocalStats) -> Vec<usize> {
        if region.radius.is_infinite() {
            stats.tuples_scanned += self.tuples.len() as u64;
            return (0..self.tuples.len()).collect();
        }
        let r2 = region.radius * region.radius;
        let c = region.center;
        let circle_hits_box = |b: &NdBox| {
            // Squared distance from the circle centre to the box.
            let dx = (b.min[0] - c.x).max(0.0).max(c.x - b.max[0]);
            let dy = (b.min[1] - c.y).max(0.0).max(c.y - b.max[1]);
            dx * dx + dy * dy <= r2
        };
        let mut out = Vec::new();
        self.tree.visit_intersecting(circle_hits_box, |p| {
            let i = p as usize;
            stats.tuples_scanned += 1;
            if self.tuples[i].dist2(c) <= r2 {
                out.push(i);
            }
        });
        out
    }
}

impl DeviceRelation for SpatialRelation {
    fn model(&self) -> StorageModel {
        StorageModel::SpatialIndex
    }

    fn len(&self) -> usize {
        self.tuples.len()
    }

    fn dim(&self) -> usize {
        self.dim
    }

    fn tuple(&self, i: usize) -> Tuple {
        self.tuples[i].clone()
    }

    fn lower_bounds(&self) -> Option<Vec<f64>> {
        None // values are unsorted; only the spatial dimension is indexed
    }

    fn upper_bounds(&self) -> Option<UpperBounds> {
        None
    }

    fn storage_bytes(&self) -> usize {
        // Raw tuples + roughly 24 bytes of index per entry (bbox share +
        // entry) — the space cost of dropping the paper's assumption.
        self.tuples.len() * 8 * (self.dim + 2) + self.tuples.len() * 24
    }

    fn local_skyline(&self, query: &LocalQuery) -> LocalSkylineOutcome {
        let mut stats = LocalStats::default();
        if query.region.misses(&self.mbr) {
            return LocalSkylineOutcome::skipped();
        }
        let candidates = self.in_range(&query.region, &mut stats);
        stats.in_range = candidates.len() as u64;

        // SFS over the in-range tuples (sum presort → exact single scan).
        let mut order = candidates;
        order.sort_by(|&a, &b| {
            let sa: f64 = self.tuples[a].attrs.iter().sum();
            let sb: f64 = self.tuples[b].attrs.iter().sum();
            sa.total_cmp(&sb).then(a.cmp(&b))
        });
        let mut window: Vec<usize> = Vec::new();
        for i in order {
            let t = &self.tuples[i];
            let mut dominated = false;
            for &w in &window {
                stats.value_comparisons += 1;
                if dominates(&self.tuples[w].attrs, &t.attrs) {
                    dominated = true;
                    break;
                }
            }
            if !dominated {
                window.push(i);
            }
        }

        let unreduced: Vec<Tuple> = window.iter().map(|&i| self.tuples[i].clone()).collect();
        let unreduced_len = unreduced.len();
        let reduced: Vec<Tuple> = if query.has_filters() {
            unreduced.into_iter().filter(|t| !query.eliminates(&t.attrs)).collect()
        } else {
            unreduced
        };
        let filter_candidate: Option<FilterTuple> =
            query.vdr_bounds.as_ref().and_then(|b| select_filter(&reduced, b));

        LocalSkylineOutcome {
            skyline: reduced,
            unreduced_len,
            skipped: false,
            filter_candidate,
            stats,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use skyline_core::region::Point;

    fn grid_data(n: usize) -> Vec<Tuple> {
        (0..n)
            .map(|i| {
                Tuple::new(
                    (i % 32) as f64 * 10.0,
                    (i / 32) as f64 * 10.0,
                    vec![((i * 7) % 50) as f64, ((i * 13) % 50) as f64],
                )
            })
            .collect()
    }

    #[test]
    fn matches_flat_on_bounded_queries() {
        let data = grid_data(500);
        let spatial = SpatialRelation::new(data.clone());
        let flat = crate::FlatRelation::new(data);
        for r in [25.0, 80.0, 200.0] {
            let q = LocalQuery::plain(QueryRegion::new(Point::new(100.0, 70.0), r));
            let mut a: Vec<_> = spatial
                .local_skyline(&q)
                .skyline
                .iter()
                .map(|t| (t.x.to_bits(), t.y.to_bits()))
                .collect();
            let mut b: Vec<_> = flat
                .local_skyline(&q)
                .skyline
                .iter()
                .map(|t| (t.x.to_bits(), t.y.to_bits()))
                .collect();
            a.sort_unstable();
            b.sort_unstable();
            assert_eq!(a, b, "radius {r}");
        }
    }

    #[test]
    fn index_visits_fewer_candidates_on_small_radii() {
        let data = grid_data(1000);
        let spatial = SpatialRelation::new(data);
        let q = LocalQuery::plain(QueryRegion::new(Point::new(50.0, 50.0), 30.0));
        let out = spatial.local_skyline(&q);
        assert!(
            out.stats.tuples_scanned < 1000,
            "index should prune ({} visited)",
            out.stats.tuples_scanned
        );
        assert!(out.stats.in_range <= out.stats.tuples_scanned);
    }

    #[test]
    fn unbounded_query_degenerates_to_scan() {
        let data = grid_data(300);
        let spatial = SpatialRelation::new(data);
        let q = LocalQuery::plain(QueryRegion::unbounded());
        let out = spatial.local_skyline(&q);
        assert_eq!(out.stats.tuples_scanned, 300);
        assert!(!out.skyline.is_empty());
    }

    #[test]
    fn mbr_miss_short_circuits() {
        let spatial = SpatialRelation::new(grid_data(100));
        let q = LocalQuery::plain(QueryRegion::new(Point::new(-500.0, -500.0), 10.0));
        assert!(spatial.local_skyline(&q).skipped);
    }

    #[test]
    fn empty_relation() {
        let spatial = SpatialRelation::new(Vec::new());
        let q = LocalQuery::plain(QueryRegion::unbounded());
        assert!(spatial.local_skyline(&q).skyline.is_empty());
    }
}
