//! Domain storage [Ammann, Hanrahan, Krishnamurthy, IEEE COMPCON 1985].
//!
//! Every attribute value lives once in a per-attribute domain array and each
//! tuple stores a *pointer* (index) to its value. Unlike the paper's hybrid
//! model, the domain arrays are kept in **insertion order** — the scheme
//! predates the sorted-domain idea — so pointer comparison says nothing
//! about value order and every dominance test must dereference both
//! pointers. Section 4.1 rejects this scheme because of exactly that extra
//! indirection; it is implemented here so the rejection is measurable
//! (the [`LocalStats::pointer_hops`](crate::traits::LocalStats) counter and
//! the `storage_ablation` bench).

use skyline_core::region::{Mbr, Point};
use skyline_core::vdr::{select_filter, FilterTuple};
use skyline_core::Tuple;

use crate::traits::{DeviceRelation, LocalQuery, LocalSkylineOutcome, LocalStats, StorageModel};

/// A local relation in domain storage.
#[derive(Debug, Clone)]
pub struct DomainRelation {
    locs: Vec<Point>,
    /// `pointers[j][row]` → index into `domains[j]`.
    pointers: Vec<Vec<u32>>,
    /// Distinct values per attribute, in first-seen (insertion) order.
    domains: Vec<Vec<f64>>,
    mbr: Mbr,
    rows: usize,
    dim: usize,
}

impl DomainRelation {
    /// Builds domain storage from a set of tuples.
    pub fn new(tuples: Vec<Tuple>) -> Self {
        let dim = tuples.first().map_or(0, Tuple::dim);
        assert!(tuples.iter().all(|t| t.dim() == dim), "mixed dimensionality in relation");
        let rows = tuples.len();
        let mut domains: Vec<Vec<f64>> = vec![Vec::new(); dim];
        let mut pointers: Vec<Vec<u32>> = vec![Vec::with_capacity(rows); dim];
        for t in &tuples {
            for j in 0..dim {
                let v = t.attrs[j];
                // Linear probe keeps insertion order; domains are small on
                // the devices this models.
                let idx = match domains[j].iter().position(|&d| d == v) {
                    Some(i) => i,
                    None => {
                        domains[j].push(v);
                        domains[j].len() - 1
                    }
                };
                pointers[j].push(idx as u32);
            }
        }
        let locs: Vec<Point> = tuples.iter().map(Tuple::location).collect();
        let mbr = Mbr::of_points(locs.iter().copied());
        DomainRelation { locs, pointers, domains, mbr, rows, dim }
    }

    /// Dereferences attribute `j` of `row`, charging one pointer hop.
    #[inline]
    fn value(&self, row: usize, j: usize, stats: &mut LocalStats) -> f64 {
        stats.pointer_hops += 1;
        self.domains[j][self.pointers[j][row] as usize]
    }

    /// Full dominance in value space, dereferencing on every comparison.
    fn dominates(&self, a: usize, b: usize, stats: &mut LocalStats) -> bool {
        let mut strict = false;
        for j in 0..self.dim {
            let (va, vb) = (self.value(a, j, stats), self.value(b, j, stats));
            if va > vb {
                return false;
            }
            if va < vb {
                strict = true;
            }
        }
        strict
    }
}

impl DeviceRelation for DomainRelation {
    fn model(&self) -> StorageModel {
        StorageModel::Domain
    }

    fn len(&self) -> usize {
        self.rows
    }

    fn dim(&self) -> usize {
        self.dim
    }

    fn tuple(&self, i: usize) -> Tuple {
        let attrs = (0..self.dim).map(|j| self.domains[j][self.pointers[j][i] as usize]).collect();
        Tuple::new(self.locs[i].x, self.locs[i].y, attrs)
    }

    /// Unsorted domains: the minimum needs a scan, so no O(1) bounds.
    fn lower_bounds(&self) -> Option<Vec<f64>> {
        None
    }

    fn upper_bounds(&self) -> Option<skyline_core::vdr::UpperBounds> {
        None
    }

    fn storage_bytes(&self) -> usize {
        let locs = self.locs.len() * 16;
        let ptrs: usize = self.pointers.iter().map(|p| p.len() * 4).sum();
        let doms: usize = self.domains.iter().map(|d| d.len() * 8).sum();
        locs + ptrs + doms
    }

    fn local_skyline(&self, query: &LocalQuery) -> LocalSkylineOutcome {
        let mut stats = LocalStats::default();
        if query.region.misses(&self.mbr) {
            return LocalSkylineOutcome::skipped();
        }
        let r2 = query.region.radius * query.region.radius;
        let center = query.region.center;

        // BNL with dereference-per-comparison.
        let mut window: Vec<usize> = Vec::new();
        for row in 0..self.rows {
            stats.tuples_scanned += 1;
            if !query.region.radius.is_infinite() && self.locs[row].dist2(center) > r2 {
                continue;
            }
            stats.in_range += 1;
            let mut dominated = false;
            let mut keep: Vec<usize> = Vec::with_capacity(window.len());
            for &w in &window {
                if dominated {
                    keep.push(w);
                    continue;
                }
                stats.value_comparisons += 1;
                if self.dominates(w, row, &mut stats) {
                    dominated = true;
                    keep.push(w);
                } else {
                    stats.value_comparisons += 1;
                    if !self.dominates(row, w, &mut stats) {
                        keep.push(w);
                    }
                }
            }
            window = keep;
            if !dominated {
                window.push(row);
            }
        }

        let unreduced: Vec<Tuple> = window.iter().map(|&r| self.tuple(r)).collect();
        let unreduced_len = unreduced.len();
        let reduced: Vec<Tuple> = if query.has_filters() {
            unreduced.into_iter().filter(|t| !query.eliminates(&t.attrs)).collect()
        } else {
            unreduced
        };
        let filter_candidate: Option<FilterTuple> =
            query.vdr_bounds.as_ref().and_then(|b| select_filter(&reduced, b));

        LocalSkylineOutcome {
            skyline: reduced,
            unreduced_len,
            skipped: false,
            filter_candidate,
            stats,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use skyline_core::region::QueryRegion;

    fn data() -> Vec<Tuple> {
        vec![
            Tuple::new(0.0, 0.0, vec![20.0, 7.0]),
            Tuple::new(1.0, 0.0, vec![40.0, 5.0]),
            Tuple::new(2.0, 0.0, vec![20.0, 7.0 + 0.0]), // shares both values with row 0
            Tuple::new(3.0, 0.0, vec![100.0, 3.0]),
        ]
    }

    #[test]
    fn values_are_shared_in_domains() {
        let d = DomainRelation::new(data());
        assert_eq!(d.domains[0].len(), 3, "20 stored once");
        assert_eq!(d.domains[1].len(), 3);
    }

    #[test]
    fn tuple_round_trip() {
        let src = data();
        let d = DomainRelation::new(src.clone());
        for (i, t) in src.iter().enumerate() {
            assert_eq!(&d.tuple(i).attrs, &t.attrs);
        }
    }

    #[test]
    fn skyline_matches_flat() {
        let src = data();
        let d = DomainRelation::new(src.clone());
        let f = crate::FlatRelation::new(src);
        let q = LocalQuery::plain(QueryRegion::unbounded());
        let mut a: Vec<Vec<f64>> =
            d.local_skyline(&q).skyline.into_iter().map(|t| t.attrs).collect();
        let mut b: Vec<Vec<f64>> =
            f.local_skyline(&q).skyline.into_iter().map(|t| t.attrs).collect();
        a.sort_by(|x, y| crate::total_lex(x, y));
        b.sort_by(|x, y| crate::total_lex(x, y));
        assert_eq!(a, b);
    }

    #[test]
    fn pointer_hops_are_charged() {
        let d = DomainRelation::new(data());
        let out = d.local_skyline(&LocalQuery::plain(QueryRegion::unbounded()));
        assert!(out.stats.pointer_hops > 0, "every comparison dereferences");
    }

    #[test]
    fn no_constant_time_bounds() {
        let d = DomainRelation::new(data());
        assert!(d.lower_bounds().is_none());
        assert!(d.upper_bounds().is_none());
    }
}
