//! Sorted attribute domains and adaptive-width ID columns — the building
//! blocks of the paper's ID-based hybrid storage.
//!
//! Every non-spatial attribute keeps its distinct values in a **sorted**
//! array ([`AttributeDomain`]); a tuple stores, per attribute, the *index*
//! of its value in that array. Because the array is sorted, comparing two
//! IDs is equivalent to comparing the underlying values
//! (`v_a < v_b ⟺ id_a < id_b`), which is the property the Fig. 4 scan
//! exploits: dominance can be decided on small integers without touching the
//! value arrays at all.
//!
//! The paper stores byte IDs when a domain has ≤ 256 distinct values ("Since
//! each domain contains 100 distinct values, we use byte type IDs");
//! [`IdArray`] picks u8/u16/u32 automatically.

/// The sorted distinct values of one attribute on one device.
#[derive(Debug, Clone, PartialEq)]
pub struct AttributeDomain {
    values: Vec<f64>,
}

impl AttributeDomain {
    /// Builds the domain from an iterator of attribute values (need not be
    /// unique or sorted). Values are ordered by `f64::total_cmp`, so a NaN
    /// from a bad generator config degrades deterministically (NaN ranks
    /// after `+∞`, i.e. as the worst possible value) instead of aborting a
    /// whole sweep with a sort panic.
    pub fn build<I: IntoIterator<Item = f64>>(values: I) -> Self {
        let mut v: Vec<f64> = values.into_iter().collect();
        v.sort_by(f64::total_cmp);
        v.dedup_by(|a, b| a.total_cmp(b).is_eq());
        AttributeDomain { values: v }
    }

    /// Number of distinct values.
    #[inline]
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// `true` when the domain is empty (empty relation).
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Smallest value `l_j` — O(1) thanks to the sort, exactly the access
    /// the paper's skip check relies on.
    #[inline]
    pub fn min(&self) -> Option<f64> {
        self.values.first().copied()
    }

    /// Largest value `h_j` — O(1); these are the `UNE` bounds.
    #[inline]
    pub fn max(&self) -> Option<f64> {
        self.values.last().copied()
    }

    /// ID (rank) of `value`, which must be present in the domain.
    ///
    /// # Panics
    /// Panics when `value` was never inserted — IDs only exist for stored
    /// values, so a miss is a construction bug.
    #[inline]
    pub fn id_of(&self, value: f64) -> u32 {
        self.values
            .binary_search_by(|v| v.total_cmp(&value))
            .expect("value not present in attribute domain") as u32
    }

    /// Value stored under `id`.
    #[inline]
    pub fn value_of(&self, id: u32) -> f64 {
        self.values[id as usize]
    }

    /// Number of domain values strictly smaller than `v` — the rank a
    /// *foreign* value (e.g. a filter-tuple attribute that this device never
    /// stored) would occupy. Used to translate filter comparisons into ID
    /// space if desired.
    #[inline]
    pub fn rank_of(&self, v: f64) -> u32 {
        self.values.partition_point(|&x| x < v) as u32
    }

    /// Bytes used by the value array.
    pub fn storage_bytes(&self) -> usize {
        self.values.len() * 8
    }
}

/// A column of attribute IDs with adaptive width.
#[derive(Debug, Clone, PartialEq)]
pub enum IdArray {
    /// Domains with ≤ 256 distinct values (the paper's byte IDs).
    U8(Vec<u8>),
    /// Domains with ≤ 65 536 distinct values.
    U16(Vec<u16>),
    /// Anything larger.
    U32(Vec<u32>),
}

impl IdArray {
    /// Packs `ids` using the narrowest width that fits `domain_size`
    /// distinct values.
    pub fn pack(ids: &[u32], domain_size: usize) -> Self {
        if domain_size <= (u8::MAX as usize) + 1 {
            IdArray::U8(ids.iter().map(|&i| i as u8).collect())
        } else if domain_size <= (u16::MAX as usize) + 1 {
            IdArray::U16(ids.iter().map(|&i| i as u16).collect())
        } else {
            IdArray::U32(ids.to_vec())
        }
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        match self {
            IdArray::U8(v) => v.len(),
            IdArray::U16(v) => v.len(),
            IdArray::U32(v) => v.len(),
        }
    }

    /// `true` when the column has no rows.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// ID of row `i`, widened to u32.
    #[inline]
    pub fn get(&self, i: usize) -> u32 {
        match self {
            IdArray::U8(v) => u32::from(v[i]),
            IdArray::U16(v) => u32::from(v[i]),
            IdArray::U32(v) => v[i],
        }
    }

    /// Bytes used by the packed column.
    pub fn storage_bytes(&self) -> usize {
        match self {
            IdArray::U8(v) => v.len(),
            IdArray::U16(v) => v.len() * 2,
            IdArray::U32(v) => v.len() * 4,
        }
    }

    /// Width in bytes of one ID.
    pub fn id_width(&self) -> usize {
        match self {
            IdArray::U8(_) => 1,
            IdArray::U16(_) => 2,
            IdArray::U32(_) => 4,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_sorts_and_dedups() {
        let d = AttributeDomain::build(vec![3.0, 1.0, 3.0, 2.0]);
        assert_eq!(d.len(), 3);
        assert_eq!(d.min(), Some(1.0));
        assert_eq!(d.max(), Some(3.0));
    }

    #[test]
    fn ids_reflect_value_order() {
        let d = AttributeDomain::build(vec![0.5, 9.9, 4.2]);
        let (a, b, c) = (d.id_of(0.5), d.id_of(4.2), d.id_of(9.9));
        assert!(a < b && b < c);
        assert_eq!(d.value_of(a), 0.5);
        assert_eq!(d.value_of(c), 9.9);
    }

    #[test]
    fn id_round_trip_for_every_value() {
        let vals = [7.0, 1.0, 3.5, 3.5, 100.0];
        let d = AttributeDomain::build(vals);
        for &v in &vals {
            assert_eq!(d.value_of(d.id_of(v)), v);
        }
    }

    #[test]
    #[should_panic(expected = "not present")]
    fn id_of_missing_value_panics() {
        AttributeDomain::build(vec![1.0]).id_of(2.0);
    }

    #[test]
    fn rank_of_handles_foreign_values() {
        let d = AttributeDomain::build(vec![10.0, 20.0, 30.0]);
        assert_eq!(d.rank_of(5.0), 0);
        assert_eq!(d.rank_of(10.0), 0, "rank counts strictly smaller values");
        assert_eq!(d.rank_of(15.0), 1);
        assert_eq!(d.rank_of(31.0), 3);
    }

    #[test]
    fn nan_ingestion_degrades_instead_of_panicking() {
        // Regression: the build sort used `partial_cmp(..).expect(..)`, so
        // one NaN from a bad generator config aborted the whole sweep. Under
        // total_cmp a NaN ranks after +∞ (the worst possible value) and the
        // rest of the domain keeps working.
        let d = AttributeDomain::build(vec![2.0, f64::NAN, 1.0]);
        assert_eq!(d.len(), 3);
        assert_eq!(d.min(), Some(1.0));
        assert!(d.max().unwrap().is_nan(), "NaN ranks last");
        assert_eq!(d.id_of(1.0), 0);
        assert_eq!(d.id_of(2.0), 1);
        assert_eq!(d.id_of(f64::NAN), 2, "NaN is findable, not fatal");
        assert_eq!(d.rank_of(3.0), 2, "finite ranks unaffected by the NaN");
    }

    #[test]
    fn empty_domain() {
        let d = AttributeDomain::build(std::iter::empty());
        assert!(d.is_empty());
        assert_eq!(d.min(), None);
        assert_eq!(d.max(), None);
    }

    #[test]
    fn pack_picks_narrowest_width() {
        let ids: Vec<u32> = (0..10).collect();
        assert_eq!(IdArray::pack(&ids, 100).id_width(), 1);
        assert_eq!(IdArray::pack(&ids, 256).id_width(), 1);
        assert_eq!(IdArray::pack(&ids, 257).id_width(), 2);
        assert_eq!(IdArray::pack(&ids, 70_000).id_width(), 4);
    }

    #[test]
    fn packed_get_widens_correctly() {
        let ids = vec![0u32, 5, 255];
        for size in [256, 1000, 100_000] {
            let col = IdArray::pack(&ids, size);
            for (i, &id) in ids.iter().enumerate() {
                assert_eq!(col.get(i), id, "width {}", col.id_width());
            }
        }
    }

    #[test]
    fn storage_bytes_scale_with_width() {
        let ids = vec![1u32; 100];
        assert_eq!(IdArray::pack(&ids, 10).storage_bytes(), 100);
        assert_eq!(IdArray::pack(&ids, 1000).storage_bytes(), 200);
        assert_eq!(IdArray::pack(&ids, 100_000).storage_bytes(), 400);
    }
}
