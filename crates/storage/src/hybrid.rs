//! Hybrid ID-based storage (HS) — the paper's Section 4 proposal — and the
//! Fig. 4 device-local skyline algorithm.
//!
//! Layout per relation `R_i`:
//!
//! * spatial coordinates stored **inline** per row (locations are rarely
//!   shared, so factoring them out would not save space);
//! * each non-spatial attribute ID-encoded against a **sorted**
//!   [`AttributeDomain`] (byte IDs when the domain fits in 256 values);
//! * the minimum bounding rectangle kept as four constants for the O(1)
//!   `mindist` early exit;
//! * rows sorted ascending on the ID of the attribute with the most
//!   distinct values (the paper's SFS-inspired presort). We additionally
//!   break ties by the sum of all IDs so that a dominating row is *always*
//!   scanned before every row it dominates — this makes the scan exact even
//!   under the full dominance test (the paper's strict test does not need
//!   it, but costs nothing).
//!
//! The Fig. 4 query pipeline: MBR miss check → filter-dominates-domain-minima
//! check (skip the whole relation in O(n) attribute comparisons) → ID-based
//! sorted scan with inline spatial filtering → post-scan filter application
//! and best-VDR candidate pick.

use std::sync::Mutex;

use skyline_core::region::{Mbr, Point};
use skyline_core::vdr::{select_filter, FilterTuple};
use skyline_core::{kernel_for, strict_kernel_for, DomKernel, DominanceTest, Tuple};

use crate::domain_index::{AttributeDomain, IdArray};
use crate::traits::{DeviceRelation, LocalQuery, LocalSkylineOutcome, LocalStats, StorageModel};

/// One memoized window scan: the surviving row indices plus the exact
/// [`LocalStats`] the scan accumulated, replayed verbatim on every hit so
/// cached and fresh evaluations are indistinguishable to any caller
/// (including cost models that turn stats into simulated CPU time).
#[derive(Debug, Clone)]
struct CachedScan {
    window: Vec<usize>,
    stats: LocalStats,
}

/// Per-relation scan memo for *unbounded* regions, one slot per dominance
/// test. The Fig. 4 window depends only on (region, dominance) — filters are
/// applied after the scan — so with an infinite radius the window is a pure
/// function of the dominance test and can be reused across every repeated
/// `Q_ds` evaluation (`run_all_origins` asks each device the same unbounded
/// scan once per origin × strategy). Finite regions bypass the cache.
#[derive(Debug, Default)]
struct WindowCache {
    slots: [Option<CachedScan>; 2],
}

fn cache_slot(test: DominanceTest) -> usize {
    match test {
        DominanceTest::Full => 0,
        DominanceTest::PaperStrict => 1,
    }
}

/// A local relation in the paper's hybrid storage model.
///
/// ```
/// use device_storage::{DeviceRelation, HybridRelation, LocalQuery};
/// use skyline_core::{QueryRegion, Tuple};
///
/// let rel = HybridRelation::new(vec![
///     Tuple::new(0.0, 0.0, vec![20.0, 7.0]),
///     Tuple::new(1.0, 0.0, vec![40.0, 5.0]),
///     Tuple::new(2.0, 0.0, vec![80.0, 7.0]), // dominated by the first
/// ]);
/// let out = rel.local_skyline(&LocalQuery::plain(QueryRegion::unbounded()));
/// assert_eq!(out.skyline.len(), 2);
/// assert_eq!(rel.lower_bounds().unwrap(), vec![20.0, 5.0]); // O(1) domain minima
/// ```
#[derive(Debug)]
pub struct HybridRelation {
    /// Site locations in row (sorted) order.
    locs: Vec<Point>,
    /// One packed ID column per attribute, row order.
    columns: Vec<IdArray>,
    /// Sorted distinct values per attribute.
    domains: Vec<AttributeDomain>,
    /// MBR of all sites (the `x/y min/max` constants).
    mbr: Mbr,
    /// Attribute whose ID the rows are sorted on.
    sort_attr: usize,
    rows: usize,
    dim: usize,
    /// Row-major scan arena: every row's attribute IDs widened to `f64`
    /// (u32 → f64 is exact), with the columns permuted so the sorted
    /// attribute sits **last**. The Fig. 4 scan then runs the contiguous
    /// [`TupleBlock`](skyline_core::TupleBlock)-style kernels over plain
    /// slices — full dominance over the whole row, the paper's strict test
    /// over the first `dim - 1` entries — instead of dispatching on the
    /// packed column width per comparison. IDs compare exactly like the
    /// packed integers, so results are bit-identical to [`Self::id_dominates`].
    arena: Vec<f64>,
    /// Memoized unbounded-region windows (see [`WindowCache`]). Interior
    /// mutability keeps [`DeviceRelation::local_skyline`]'s `&self`
    /// signature; the mutex is uncontended (relations are per-device).
    cache: Mutex<WindowCache>,
}

impl Clone for HybridRelation {
    fn clone(&self) -> Self {
        HybridRelation {
            locs: self.locs.clone(),
            columns: self.columns.clone(),
            domains: self.domains.clone(),
            mbr: self.mbr,
            sort_attr: self.sort_attr,
            rows: self.rows,
            dim: self.dim,
            arena: self.arena.clone(),
            // The memo is derived state; a clone starts cold and re-earns
            // identical entries on first use.
            cache: Mutex::new(WindowCache::default()),
        }
    }
}

impl HybridRelation {
    /// Builds hybrid storage from a set of tuples.
    pub fn new(tuples: Vec<Tuple>) -> Self {
        let dim = tuples.first().map_or(0, Tuple::dim);
        assert!(tuples.iter().all(|t| t.dim() == dim), "mixed dimensionality in relation");
        let rows = tuples.len();

        let domains: Vec<AttributeDomain> = (0..dim)
            .map(|j| AttributeDomain::build(tuples.iter().map(|t| t.attrs[j])))
            .collect();

        // Raw (unsorted) id matrix, row-major.
        let raw_ids: Vec<Vec<u32>> = tuples
            .iter()
            .map(|t| (0..dim).map(|j| domains[j].id_of(t.attrs[j])).collect())
            .collect();

        // "We choose the attribute with the largest number of distinct
        // values as the attribute to be sorted on."
        let sort_attr = (0..dim).max_by_key(|&j| domains[j].len()).unwrap_or(0);

        let mut order: Vec<usize> = (0..rows).collect();
        order.sort_by_key(|&r| {
            let primary = if dim > 0 { raw_ids[r][sort_attr] } else { 0 };
            let sum: u64 = raw_ids[r].iter().map(|&v| u64::from(v)).sum();
            (primary, sum, r)
        });

        let locs: Vec<Point> = order.iter().map(|&r| tuples[r].location()).collect();
        let columns: Vec<IdArray> = (0..dim)
            .map(|j| {
                let ids: Vec<u32> = order.iter().map(|&r| raw_ids[r][j]).collect();
                IdArray::pack(&ids, domains[j].len())
            })
            .collect();
        let mbr = Mbr::of_points(locs.iter().copied());

        // Scan arena: non-sorted attributes first, the sorted attribute
        // last, so the strict test is a prefix comparison.
        let perm: Vec<usize> = (0..dim)
            .filter(|&j| j != sort_attr)
            .chain(std::iter::once(sort_attr))
            .take(dim)
            .collect();
        let mut arena = Vec::with_capacity(rows * dim);
        for r in 0..rows {
            for &j in &perm {
                arena.push(f64::from(columns[j].get(r)));
            }
        }

        HybridRelation {
            locs,
            columns,
            domains,
            mbr,
            sort_attr,
            rows,
            dim,
            arena,
            cache: Mutex::new(WindowCache::default()),
        }
    }

    /// The relation's MBR.
    pub fn mbr(&self) -> &Mbr {
        &self.mbr
    }

    /// Which attribute the rows are sorted on.
    pub fn sort_attribute(&self) -> usize {
        self.sort_attr
    }

    /// The sorted domain of attribute `j`.
    pub fn domain(&self, j: usize) -> &AttributeDomain {
        &self.domains[j]
    }

    /// IDs of row `r` collected into a fresh vector (diagnostics/tests).
    pub fn row_ids(&self, r: usize) -> Vec<u32> {
        self.columns.iter().map(|c| c.get(r)).collect()
    }

    /// Materializes row `r` back into value space.
    fn materialize(&self, r: usize) -> Tuple {
        let attrs = self
            .columns
            .iter()
            .zip(&self.domains)
            .map(|(col, dom)| dom.value_of(col.get(r)))
            .collect();
        Tuple::new(self.locs[r].x, self.locs[r].y, attrs)
    }

    /// Materializes row `r`'s attribute values into `out` (reused scratch).
    fn attrs_into(&self, r: usize, out: &mut Vec<f64>) {
        out.clear();
        out.extend(
            self.columns
                .iter()
                .zip(&self.domains)
                .map(|(col, dom)| dom.value_of(col.get(r))),
        );
    }

    /// The scan kernel and comparison width for a dominance test: full
    /// dominance runs over the whole permuted row; the paper's strict test
    /// skips the sorted attribute, i.e. compares the `dim - 1` prefix (a
    /// 1-attribute relation falls back to a strict test on the sorted
    /// attribute itself, exactly as [`Self::id_dominates`] does).
    fn scan_kernel(&self, test: DominanceTest) -> (DomKernel, usize) {
        match test {
            DominanceTest::Full => (kernel_for(self.dim), self.dim),
            DominanceTest::PaperStrict if self.dim == 1 => (strict_kernel_for(1), 1),
            DominanceTest::PaperStrict => (strict_kernel_for(self.dim - 1), self.dim - 1),
        }
    }

    /// The Fig. 4 window scan over the presorted arena: returns the
    /// surviving row indices and the stats the scan accumulated.
    fn scan_window(&self, region: &skyline_core::QueryRegion, test: DominanceTest) -> CachedScan {
        let mut stats = LocalStats::default();
        let unbounded = region.radius.is_infinite();
        let r2 = region.radius * region.radius;
        let center = region.center;
        let dim = self.dim;
        let (kernel, width) = if dim > 0 { self.scan_kernel(test) } else { (kernel_for(0), 0) };
        let mut window: Vec<usize> = Vec::new();
        for row in 0..self.rows {
            stats.tuples_scanned += 1;
            if !unbounded && self.locs[row].dist2(center) > r2 {
                continue;
            }
            stats.in_range += 1;
            let cand = &self.arena[row * dim..row * dim + width];
            let mut dominated = false;
            for &w in &window {
                stats.id_comparisons += 1;
                if kernel(&self.arena[w * dim..w * dim + width], cand) {
                    dominated = true;
                    break;
                }
            }
            if !dominated {
                window.push(row);
            }
        }
        CachedScan { window, stats }
    }

    /// `a` dominates `b` in ID space under the given test. IDs are rank
    /// positions in sorted domains, so ID dominance ⟺ value dominance.
    /// The production scan runs the equivalent arena kernels; this per-pair
    /// form is kept as the reference the tests compare against.
    #[cfg(test)]
    #[inline]
    fn id_dominates(&self, a: usize, b: usize, test: DominanceTest) -> bool {
        match test {
            DominanceTest::Full => {
                let mut strict = false;
                for col in &self.columns {
                    let (ia, ib) = (col.get(a), col.get(b));
                    if ia > ib {
                        return false;
                    }
                    if ia < ib {
                        strict = true;
                    }
                }
                strict
            }
            // Fig. 4: skip the sorted attribute, require strict `<` on the
            // rest. Sound because the scan guarantees a.id_sort <= b.id_sort.
            DominanceTest::PaperStrict => {
                for (j, col) in self.columns.iter().enumerate() {
                    if j == self.sort_attr {
                        continue;
                    }
                    if col.get(a) >= col.get(b) {
                        return false;
                    }
                }
                // A 1-attribute relation has no "rest": fall back to a
                // strict comparison on the sorted attribute itself.
                if self.dim == 1 {
                    return self.columns[0].get(a) < self.columns[0].get(b);
                }
                true
            }
        }
    }
}

impl DeviceRelation for HybridRelation {
    fn model(&self) -> StorageModel {
        StorageModel::Hybrid
    }

    fn len(&self) -> usize {
        self.rows
    }

    fn dim(&self) -> usize {
        self.dim
    }

    fn tuple(&self, i: usize) -> Tuple {
        self.materialize(i)
    }

    fn lower_bounds(&self) -> Option<Vec<f64>> {
        if self.rows == 0 {
            return None;
        }
        Some(self.domains.iter().map(|d| d.min().expect("non-empty")).collect())
    }

    fn upper_bounds(&self) -> Option<skyline_core::vdr::UpperBounds> {
        if self.rows == 0 {
            return None;
        }
        Some(skyline_core::vdr::UpperBounds::new(
            self.domains.iter().map(|d| d.max().expect("non-empty")).collect(),
        ))
    }

    fn storage_bytes(&self) -> usize {
        // The paper's storage model: packed IDs + domains + locations. The
        // scan arena is a derived acceleration structure (recomputable from
        // the columns) and is deliberately excluded, like any other cache.
        let locs = self.locs.len() * 16;
        let ids: usize = self.columns.iter().map(IdArray::storage_bytes).sum();
        let domains: usize = self.domains.iter().map(AttributeDomain::storage_bytes).sum();
        locs + ids + domains + 4 * 8 // + the MBR constants
    }

    fn local_skyline(&self, query: &LocalQuery) -> LocalSkylineOutcome {
        let mut stats = LocalStats::default();

        // Guard 1: MBR vs query region (O(1)).
        if query.region.misses(&self.mbr) {
            return LocalSkylineOutcome::skipped();
        }

        // Guard 2: does any filter dominate the virtual best corner? (O(n)
        // attribute comparisons per filter thanks to the sorted domains.)
        if query.has_filters() {
            if let Some(lower) = self.lower_bounds() {
                stats.value_comparisons += self.dim as u64;
                if query.skips_relation(&lower) {
                    return LocalSkylineOutcome::skipped();
                }
            }
        }

        // ID-based SFS scan in the presorted row order, over the contiguous
        // kernel arena. Unbounded regions (the static `Q_ds` evaluations)
        // memoize the window per dominance test: the scan ignores filters,
        // so repeated queries replay the stored indices — and the stored
        // stats, byte for byte — instead of rescanning.
        let scan = if query.region.radius.is_infinite() {
            let slot = cache_slot(query.dominance);
            let mut cache = self.cache.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
            match &cache.slots[slot] {
                Some(hit) => hit.clone(),
                None => {
                    let fresh = self.scan_window(&query.region, query.dominance);
                    cache.slots[slot] = Some(fresh.clone());
                    fresh
                }
            }
        } else {
            self.scan_window(&query.region, query.dominance)
        };
        let CachedScan { window, stats: scan_stats } = scan;
        stats.tuples_scanned += scan_stats.tuples_scanned;
        stats.in_range += scan_stats.in_range;
        stats.value_comparisons += scan_stats.value_comparisons;
        stats.id_comparisons += scan_stats.id_comparisons;
        stats.pointer_hops += scan_stats.pointer_hops;

        // Filter *before* materializing: eliminated rows never allocate a
        // tuple. The comparison count is unchanged — one per unreduced row.
        let unreduced_len = window.len();
        let reduced: Vec<Tuple> = if query.has_filters() {
            let mut scratch: Vec<f64> = Vec::with_capacity(self.dim);
            let mut out = Vec::with_capacity(unreduced_len);
            for &r in &window {
                stats.value_comparisons += 1;
                self.attrs_into(r, &mut scratch);
                if !query.eliminates(&scratch) {
                    out.push(Tuple::new(self.locs[r].x, self.locs[r].y, scratch.clone()));
                }
            }
            out
        } else {
            window.iter().map(|&r| self.materialize(r)).collect()
        };
        let filter_candidate: Option<FilterTuple> =
            query.vdr_bounds.as_ref().and_then(|b| select_filter(&reduced, b));

        LocalSkylineOutcome {
            skyline: reduced,
            unreduced_len,
            skipped: false,
            filter_candidate,
            stats,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use skyline_core::algo::{self, Algorithm};
    use skyline_core::region::QueryRegion;
    use skyline_core::vdr::{FilterTest, UpperBounds};
    use skyline_core::SkylineMerger;

    fn table2() -> Vec<Tuple> {
        vec![
            Tuple::new(0.0, 0.0, vec![20.0, 7.0]),
            Tuple::new(1.0, 0.0, vec![40.0, 5.0]),
            Tuple::new(2.0, 0.0, vec![80.0, 7.0]),
            Tuple::new(3.0, 0.0, vec![80.0, 4.0]),
            Tuple::new(4.0, 0.0, vec![100.0, 7.0]),
            Tuple::new(5.0, 0.0, vec![100.0, 3.0]),
        ]
    }

    fn sorted_attrs(mut v: Vec<Tuple>) -> Vec<Vec<f64>> {
        v.sort_by(|a, b| crate::total_lex(&a.attrs, &b.attrs));
        v.into_iter().map(|t| t.attrs).collect()
    }

    #[test]
    fn sort_attribute_has_most_distinct_values() {
        // price has 4 distinct values, rating has 4 as well → tie keeps
        // the first; add a tuple to break the tie.
        let mut data = table2();
        data.push(Tuple::new(6.0, 0.0, vec![120.0, 7.0])); // price now 5 distinct
        let h = HybridRelation::new(data);
        assert_eq!(h.sort_attribute(), 0);
        assert_eq!(h.domain(0).len(), 5);
        assert_eq!(h.domain(1).len(), 4);
    }

    #[test]
    fn rows_are_sorted_by_sort_attribute_id() {
        let h = HybridRelation::new(table2());
        let col = &h.columns[h.sort_attr];
        for r in 1..h.rows {
            assert!(col.get(r - 1) <= col.get(r));
        }
    }

    #[test]
    fn materialization_round_trips() {
        let data = table2();
        let h = HybridRelation::new(data.clone());
        let got: Vec<Vec<f64>> = sorted_attrs((0..h.len()).map(|r| h.tuple(r)).collect());
        let expect = sorted_attrs(data);
        assert_eq!(got, expect);
    }

    #[test]
    fn local_skyline_matches_centralized_table2() {
        let h = HybridRelation::new(table2());
        let out = h.local_skyline(&LocalQuery::plain(QueryRegion::unbounded()));
        // Paper: skyline of R_1 is {h11, h12, h14, h16}.
        let got = sorted_attrs(out.skyline);
        assert_eq!(got, vec![vec![20.0, 7.0], vec![40.0, 5.0], vec![80.0, 4.0], vec![100.0, 3.0]]);
    }

    #[test]
    fn paper_strict_mode_yields_superset() {
        // Construct ties the strict test misses: (1, 2) dominates (1, 3)
        // only through a tie on the sorted attribute.
        let data = vec![
            Tuple::new(0.0, 0.0, vec![1.0, 2.0]),
            Tuple::new(1.0, 0.0, vec![1.0, 3.0]),
            Tuple::new(2.0, 0.0, vec![2.0, 2.5]),
        ];
        let h = HybridRelation::new(data);
        let mut q = LocalQuery::plain(QueryRegion::unbounded());
        q.dominance = DominanceTest::Full;
        let full = h.local_skyline(&q).skyline.len();
        q.dominance = DominanceTest::PaperStrict;
        let strict = h.local_skyline(&q).skyline.len();
        assert_eq!(full, 1);
        assert!(strict >= full, "strict test may keep dominated ties");
        // Every full-mode member must also appear in strict mode.
        assert!(strict >= 1);
    }

    #[test]
    fn strict_superset_still_contains_true_skyline() {
        let data: Vec<Tuple> = (0..200)
            .map(|i| {
                let a = ((i * 37) % 20) as f64;
                let b = ((i * 91) % 20) as f64;
                Tuple::new(i as f64, 0.0, vec![a, b])
            })
            .collect();
        let h = HybridRelation::new(data.clone());
        let mut q = LocalQuery::plain(QueryRegion::unbounded());
        q.dominance = DominanceTest::PaperStrict;
        let strict = h.local_skyline(&q).skyline;

        let true_sky = algo::materialize(&data, &Algorithm::Bnl.skyline_indices(&data));
        for t in &true_sky {
            assert!(
                strict.iter().any(|s| s.attrs == t.attrs),
                "strict scan lost true skyline member {:?}",
                t.attrs
            );
        }
        // And a merger fixes the superset up to the exact skyline.
        let merged = SkylineMerger::with_seed(strict).into_result();
        assert_eq!(sorted_attrs(merged), sorted_attrs(true_sky));
    }

    #[test]
    fn mbr_miss_skips_everything() {
        let h = HybridRelation::new(table2());
        let q = LocalQuery::plain(QueryRegion::new(Point::new(1000.0, 1000.0), 5.0));
        let out = h.local_skyline(&q);
        assert!(out.skipped);
        assert_eq!(out.stats.tuples_scanned, 0);
    }

    #[test]
    fn dominating_filter_skips_relation() {
        let h = HybridRelation::new(table2());
        let bounds = UpperBounds::new(vec![200.0, 10.0]);
        let q = LocalQuery {
            filter: Some(FilterTuple::new(vec![10.0, 1.0], &bounds)),
            filter_test: FilterTest::StrictAll,
            ..LocalQuery::plain(QueryRegion::unbounded())
        };
        let out = h.local_skyline(&q);
        assert!(out.skipped, "filter (10,1) beats domain minima (20,3)");
    }

    #[test]
    fn non_dominating_filter_does_not_skip() {
        let h = HybridRelation::new(table2());
        let bounds = UpperBounds::new(vec![200.0, 10.0]);
        let q = LocalQuery {
            filter: Some(FilterTuple::new(vec![60.0, 3.0], &bounds)), // h21
            filter_test: FilterTest::StrictAll,
            vdr_bounds: Some(bounds),
            ..LocalQuery::plain(QueryRegion::unbounded())
        };
        let out = h.local_skyline(&q);
        assert!(!out.skipped);
        // h21 = (60, 3) strictly eliminates h14 = (80, 4) but not h16 =
        // (100, 3) (rating ties) under the paper's strict test.
        assert_eq!(out.unreduced_len, 4);
        assert_eq!(out.skyline.len(), 3);
    }

    #[test]
    fn scan_uses_id_comparisons_not_values() {
        let h = HybridRelation::new(table2());
        let out = h.local_skyline(&LocalQuery::plain(QueryRegion::unbounded()));
        assert!(out.stats.id_comparisons > 0);
        assert_eq!(out.stats.value_comparisons, 0);
    }

    #[test]
    fn byte_ids_for_small_domains() {
        let h = HybridRelation::new(table2());
        for c in &h.columns {
            assert_eq!(c.id_width(), 1, "100-value domains fit byte IDs");
        }
    }

    #[test]
    fn hybrid_storage_is_smaller_than_flat_when_domains_shared() {
        // 1000 rows, only 10 distinct values per attribute.
        let data: Vec<Tuple> = (0..1000)
            .map(|i| Tuple::new(i as f64, 0.0, vec![(i % 10) as f64, ((i / 10) % 10) as f64]))
            .collect();
        let flat = crate::FlatRelation::new(data.clone());
        let hybrid = HybridRelation::new(data);
        assert!(hybrid.storage_bytes() < flat.storage_bytes());
    }

    #[test]
    fn bounds_accessors() {
        let h = HybridRelation::new(table2());
        assert_eq!(h.lower_bounds().unwrap(), vec![20.0, 3.0]);
        assert_eq!(h.upper_bounds().unwrap().0, vec![100.0, 7.0]);
        let empty = HybridRelation::new(vec![]);
        assert!(empty.lower_bounds().is_none());
        assert!(empty.upper_bounds().is_none());
    }

    #[test]
    fn spatial_filter_inside_scan() {
        let data =
            vec![Tuple::new(0.0, 0.0, vec![5.0, 5.0]), Tuple::new(100.0, 0.0, vec![1.0, 1.0])];
        let h = HybridRelation::new(data);
        let q = LocalQuery::plain(QueryRegion::new(Point::new(0.0, 0.0), 10.0));
        let out = h.local_skyline(&q);
        assert_eq!(out.skyline.len(), 1);
        assert_eq!(out.skyline[0].attrs, vec![5.0, 5.0]);
        assert_eq!(out.stats.in_range, 1);
    }

    #[test]
    fn row_ids_are_consistent_with_domains() {
        let h = HybridRelation::new(table2());
        for r in 0..h.len() {
            let t = h.tuple(r);
            for (j, id) in h.row_ids(r).into_iter().enumerate() {
                assert_eq!(h.domain(j).value_of(id), t.attrs[j]);
            }
        }
    }

    /// Pseudo-random tuples with controllable duplication (ties exercise
    /// the strict/full divergence).
    fn mixed_data(n: usize, dim: usize, modulo: u64, seed: u64) -> Vec<Tuple> {
        (0..n as u64)
            .map(|i| {
                let mut h = i.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ seed;
                let attrs = (0..dim)
                    .map(|_| {
                        h ^= h >> 13;
                        h = h.wrapping_mul(0x2545_F491_4F6C_DD1D);
                        (h % modulo) as f64
                    })
                    .collect();
                Tuple::new((i % 50) as f64, (i / 50) as f64, attrs)
            })
            .collect()
    }

    #[test]
    fn arena_kernel_scan_matches_id_dominates_reference() {
        // The production scan runs contiguous f64 kernels over widened IDs;
        // the reference pairwise test dispatches on the packed columns.
        // They must agree pair-for-pair and window-for-window.
        for dim in 1..=5 {
            for test in [DominanceTest::Full, DominanceTest::PaperStrict] {
                let h = HybridRelation::new(mixed_data(300, dim, 7, dim as u64));
                let (kernel, width) = h.scan_kernel(test);
                for a in 0..h.len() {
                    for b in 0..h.len() {
                        let via_kernel = kernel(
                            &h.arena[a * dim..a * dim + width],
                            &h.arena[b * dim..b * dim + width],
                        );
                        // The strict test is only sound when the scan order
                        // guarantees a's sort ID ≤ b's; compare all pairs
                        // anyway — the predicates must agree unconditionally.
                        assert_eq!(
                            via_kernel,
                            h.id_dominates(a, b, test),
                            "dim {dim} {test:?} rows {a},{b}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn unbounded_window_cache_replays_identical_results_and_stats() {
        let h = HybridRelation::new(mixed_data(500, 3, 11, 0xCAFE));
        let mut q = LocalQuery::plain(QueryRegion::unbounded());
        for test in [DominanceTest::Full, DominanceTest::PaperStrict] {
            q.dominance = test;
            let first = h.local_skyline(&q);
            let second = h.local_skyline(&q);
            assert_eq!(sorted_attrs(first.skyline.clone()), sorted_attrs(second.skyline));
            assert_eq!(first.unreduced_len, second.unreduced_len);
            assert_eq!(first.stats, second.stats, "cached stats must replay exactly");
        }
    }

    #[test]
    fn cache_does_not_leak_across_dominance_tests_or_regions() {
        let h = HybridRelation::new(mixed_data(400, 2, 5, 7));
        let mut q = LocalQuery::plain(QueryRegion::unbounded());
        q.dominance = DominanceTest::Full;
        let full = h.local_skyline(&q).skyline.len();
        q.dominance = DominanceTest::PaperStrict;
        let strict = h.local_skyline(&q).skyline.len();
        assert!(strict >= full, "strict keeps dominated ties");

        // A finite region after the unbounded queries must rescan, not
        // replay: only near sites qualify.
        let finite = h.local_skyline(&LocalQuery {
            dominance: DominanceTest::Full,
            ..LocalQuery::plain(QueryRegion::new(Point::new(0.0, 0.0), 3.0))
        });
        assert!(finite.stats.in_range < h.len() as u64);
        for t in &finite.skyline {
            assert!(t.location().dist(Point::new(0.0, 0.0)) <= 3.0);
        }
    }

    #[test]
    fn cloned_relation_answers_identically_with_cold_cache() {
        let h = HybridRelation::new(mixed_data(200, 4, 9, 3));
        let q = LocalQuery::plain(QueryRegion::unbounded());
        let warm = h.local_skyline(&q); // warms h's cache
        let c = h.clone();
        let cold = c.local_skyline(&q);
        assert_eq!(sorted_attrs(warm.skyline), sorted_attrs(cold.skyline));
        assert_eq!(warm.stats, cold.stats);
    }

    #[test]
    fn filtered_queries_share_the_cached_window() {
        // Filters are applied after the scan, so a filtered query both uses
        // and seeds the unbounded window cache.
        let h = HybridRelation::new(mixed_data(300, 2, 6, 21));
        let bounds = UpperBounds::new(vec![10.0, 10.0]);
        let plain = LocalQuery::plain(QueryRegion::unbounded());
        let filtered = LocalQuery {
            filter: Some(FilterTuple::new(vec![1.0, 1.0], &bounds)),
            filter_test: FilterTest::StrictAll,
            ..LocalQuery::plain(QueryRegion::unbounded())
        };
        let a = h.local_skyline(&filtered);
        let b = h.local_skyline(&plain);
        assert_eq!(a.unreduced_len, b.unreduced_len, "same window under the filter");
        assert!(a.skyline.len() <= b.skyline.len());
        assert_eq!(a.stats.id_comparisons, b.stats.id_comparisons);
        assert!(a.stats.value_comparisons > b.stats.value_comparisons);
    }

    #[test]
    fn one_dimensional_relation_paper_strict() {
        let data = vec![
            Tuple::new(0.0, 0.0, vec![3.0]),
            Tuple::new(1.0, 0.0, vec![1.0]),
            Tuple::new(2.0, 0.0, vec![1.0]),
        ];
        let h = HybridRelation::new(data);
        let mut q = LocalQuery::plain(QueryRegion::unbounded());
        q.dominance = DominanceTest::PaperStrict;
        let out = h.local_skyline(&q);
        // Both 1.0-tuples survive (ties), 3.0 is dominated.
        assert_eq!(out.skyline.len(), 2);
    }
}
