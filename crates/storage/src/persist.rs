//! Compact binary images of device relations — the flash-card face of the
//! storage story.
//!
//! A lightweight device receives its partition as a file (sync over USB,
//! download over the cellular link, a handoff transfer); this module
//! defines that wire/flash format. It uses the same insight as the hybrid
//! storage model: non-spatial values are dictionary-encoded against sorted
//! per-attribute domains with adaptive ID width, so an image is typically a
//! fraction of the raw tuple size while decoding losslessly back to the
//! exact tuples.
//!
//! Layout (little-endian):
//!
//! ```text
//! magic "MSQ1" | dim u8 | count u32
//! per attribute: domain_len u32, domain values f64…, id_width u8
//! per row: x f64, y f64, then one id per attribute at its width
//! ```
//!
//! Decoding validates every length and index and fails loudly — a device
//! must never trust a truncated or corrupted image.

use skyline_core::Tuple;

/// Image header magic.
const MAGIC: &[u8; 4] = b"MSQ1";

/// Why an image failed to decode.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecodeError {
    /// The magic bytes are wrong — not a relation image.
    BadMagic,
    /// The buffer ended before the declared content.
    Truncated,
    /// A stored ID points outside its attribute domain.
    IdOutOfRange {
        /// Attribute index.
        attr: usize,
        /// The offending ID.
        id: u32,
    },
    /// Trailing garbage after the declared content.
    TrailingBytes(usize),
    /// A stored float is NaN (forbidden by the data model).
    NanValue,
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DecodeError::BadMagic => write!(f, "not a relation image (bad magic)"),
            DecodeError::Truncated => write!(f, "image truncated"),
            DecodeError::IdOutOfRange { attr, id } => {
                write!(f, "id {id} out of range for attribute {attr}")
            }
            DecodeError::TrailingBytes(n) => write!(f, "{n} trailing bytes after image"),
            DecodeError::NanValue => write!(f, "NaN value in image"),
        }
    }
}

impl std::error::Error for DecodeError {}

/// Serializes a relation into its compact image.
pub fn encode_relation(tuples: &[Tuple]) -> Vec<u8> {
    let dim = tuples.first().map_or(0, Tuple::dim);
    assert!(tuples.iter().all(|t| t.dim() == dim), "mixed dimensionality");
    assert!(dim <= u8::MAX as usize, "dimensionality exceeds format limit");
    assert!(tuples.len() <= u32::MAX as usize, "relation exceeds format limit");

    // Build sorted distinct domains.
    let domains: Vec<Vec<f64>> = (0..dim)
        .map(|j| {
            let mut v: Vec<f64> = tuples.iter().map(|t| t.attrs[j]).collect();
            // total_cmp keeps the encoder panic-free on NaN input; the
            // data-model NaN ban is enforced once, at decode (NanValue).
            v.sort_by(f64::total_cmp);
            v.dedup_by(|a, b| a.total_cmp(b).is_eq());
            v
        })
        .collect();
    let widths: Vec<u8> = domains.iter().map(|d| id_width(d.len())).collect();

    let mut out = Vec::new();
    out.extend_from_slice(MAGIC);
    out.push(dim as u8);
    out.extend_from_slice(&(tuples.len() as u32).to_le_bytes());
    for (d, &w) in domains.iter().zip(&widths) {
        out.extend_from_slice(&(d.len() as u32).to_le_bytes());
        for &v in d {
            out.extend_from_slice(&v.to_le_bytes());
        }
        out.push(w);
    }
    for t in tuples {
        out.extend_from_slice(&t.x.to_le_bytes());
        out.extend_from_slice(&t.y.to_le_bytes());
        for j in 0..dim {
            let id = domains[j]
                .binary_search_by(|v| v.total_cmp(&t.attrs[j]))
                .expect("value present") as u32;
            match widths[j] {
                1 => out.push(id as u8),
                2 => out.extend_from_slice(&(id as u16).to_le_bytes()),
                _ => out.extend_from_slice(&id.to_le_bytes()),
            }
        }
    }
    out
}

/// Deserializes an image back into tuples.
pub fn decode_relation(bytes: &[u8]) -> Result<Vec<Tuple>, DecodeError> {
    let mut r = Reader { bytes, pos: 0 };
    if r.take(4)? != MAGIC {
        return Err(DecodeError::BadMagic);
    }
    let dim = r.u8()? as usize;
    let count = r.u32()? as usize;

    let mut domains: Vec<Vec<f64>> = Vec::with_capacity(dim);
    let mut widths: Vec<u8> = Vec::with_capacity(dim);
    for _ in 0..dim {
        let len = r.u32()? as usize;
        let mut d = Vec::with_capacity(len.min(1 << 20));
        for _ in 0..len {
            let v = r.f64()?;
            if v.is_nan() {
                return Err(DecodeError::NanValue);
            }
            d.push(v);
        }
        domains.push(d);
        widths.push(r.u8()?);
    }

    let mut out = Vec::with_capacity(count.min(1 << 20));
    for _ in 0..count {
        let x = r.f64()?;
        let y = r.f64()?;
        if x.is_nan() || y.is_nan() {
            return Err(DecodeError::NanValue);
        }
        let mut attrs = Vec::with_capacity(dim);
        for (j, (&w, d)) in widths.iter().zip(&domains).enumerate() {
            let id = match w {
                1 => u32::from(r.u8()?),
                2 => u32::from(r.u16()?),
                _ => r.u32()?,
            };
            let v = *d.get(id as usize).ok_or(DecodeError::IdOutOfRange { attr: j, id })?;
            attrs.push(v);
        }
        out.push(Tuple::new(x, y, attrs));
    }
    if r.pos != bytes.len() {
        return Err(DecodeError::TrailingBytes(bytes.len() - r.pos));
    }
    Ok(out)
}

fn id_width(domain_len: usize) -> u8 {
    if domain_len <= (u8::MAX as usize) + 1 {
        1
    } else if domain_len <= (u16::MAX as usize) + 1 {
        2
    } else {
        4
    }
}

struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], DecodeError> {
        let end = self.pos.checked_add(n).ok_or(DecodeError::Truncated)?;
        let s = self.bytes.get(self.pos..end).ok_or(DecodeError::Truncated)?;
        self.pos = end;
        Ok(s)
    }
    fn u8(&mut self) -> Result<u8, DecodeError> {
        Ok(self.take(1)?[0])
    }
    fn u16(&mut self) -> Result<u16, DecodeError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().expect("len 2")))
    }
    fn u32(&mut self) -> Result<u32, DecodeError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("len 4")))
    }
    fn f64(&mut self) -> Result<f64, DecodeError> {
        Ok(f64::from_le_bytes(self.take(8)?.try_into().expect("len 8")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(n: usize) -> Vec<Tuple> {
        (0..n)
            .map(|i| {
                Tuple::new(
                    i as f64,
                    (i * 3 % 17) as f64,
                    vec![((i * 7) % 50) as f64 / 10.0, ((i * 13) % 30) as f64],
                )
            })
            .collect()
    }

    #[test]
    fn round_trip_preserves_tuples_exactly() {
        let src = sample(500);
        let img = encode_relation(&src);
        let back = decode_relation(&img).expect("valid image");
        assert_eq!(src, back);
    }

    #[test]
    fn empty_relation_round_trips() {
        let img = encode_relation(&[]);
        assert_eq!(decode_relation(&img).unwrap(), Vec::<Tuple>::new());
    }

    #[test]
    fn image_is_smaller_than_raw_for_shared_values() {
        let src = sample(2000); // 50- and 30-value domains → byte IDs
        let img = encode_relation(&src);
        let raw = src.len() * 8 * 4; // x, y, two f64 attrs
        assert!(img.len() < raw, "image {} B should beat raw {} B", img.len(), raw);
    }

    #[test]
    fn bad_magic_is_rejected() {
        let mut img = encode_relation(&sample(3));
        img[0] = b'X';
        assert_eq!(decode_relation(&img), Err(DecodeError::BadMagic));
    }

    #[test]
    fn truncation_is_detected_at_every_length() {
        let img = encode_relation(&sample(10));
        for cut in 0..img.len() {
            let r = decode_relation(&img[..cut]);
            assert!(
                matches!(r, Err(DecodeError::Truncated) | Err(DecodeError::BadMagic)),
                "cut at {cut} gave {r:?}"
            );
        }
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let mut img = encode_relation(&sample(4));
        img.push(0);
        assert_eq!(decode_relation(&img), Err(DecodeError::TrailingBytes(1)));
    }

    #[test]
    fn out_of_range_id_is_rejected() {
        // Single tuple with a 1-value domain → id must be 0. Corrupt it.
        let src = vec![Tuple::new(0.0, 0.0, vec![5.0])];
        let mut img = encode_relation(&src);
        let last = img.len() - 1;
        img[last] = 9;
        assert_eq!(decode_relation(&img), Err(DecodeError::IdOutOfRange { attr: 0, id: 9 }));
    }

    #[test]
    fn nan_is_rejected() {
        let src = vec![Tuple::new(0.0, 0.0, vec![5.0])];
        let mut img = encode_relation(&src);
        // Corrupt the domain value (offset: magic 4 + dim 1 + count 4 +
        // domain_len 4 = 13) with a NaN bit pattern.
        img[13..21].copy_from_slice(&f64::NAN.to_le_bytes());
        assert_eq!(decode_relation(&img), Err(DecodeError::NanValue));
    }

    #[test]
    fn wide_domains_use_wider_ids() {
        // > 256 distinct values forces u16 IDs; still exact.
        let src: Vec<Tuple> =
            (0..1000).map(|i| Tuple::new(i as f64, 0.0, vec![i as f64])).collect();
        let img = encode_relation(&src);
        assert_eq!(decode_relation(&img).unwrap(), src);
    }

    #[test]
    fn error_display_is_informative() {
        let e = DecodeError::IdOutOfRange { attr: 2, id: 7 };
        assert!(e.to_string().contains("attribute 2"));
        assert!(DecodeError::Truncated.to_string().contains("truncated"));
    }
}
