//! Ring storage [PicoDBMS — Bobineau et al., VLDB 2000].
//!
//! All tuples sharing an attribute value are linked into a ring; exactly one
//! tuple in each ring holds the external pointer to the shared value.
//! Reading an attribute of an arbitrary tuple therefore walks the ring until
//! it reaches the holder — cheap storage, expensive access. Section 4.1
//! rejects the scheme for skyline processing ("we have to traverse the
//! internal pointer chain to reach the unique tuple with the external
//! pointer"); this implementation makes that traversal cost observable via
//! [`LocalStats::pointer_hops`](crate::traits::LocalStats).

use skyline_core::region::{Mbr, Point};
use skyline_core::vdr::{select_filter, FilterTuple};
use skyline_core::Tuple;

use crate::traits::{DeviceRelation, LocalQuery, LocalSkylineOutcome, LocalStats, StorageModel};

/// Per-attribute ring structure.
#[derive(Debug, Clone)]
struct Ring {
    /// `next[row]` — the next row in the same-value ring (cyclic).
    next: Vec<u32>,
    /// `holder_value[row]` — `Some(v)` only on the single ring member with
    /// the external pointer to the shared value `v`.
    holder_value: Vec<Option<f64>>,
    /// Count of distinct values (for storage accounting).
    distinct: usize,
}

/// A local relation in ring storage.
#[derive(Debug, Clone)]
pub struct RingRelation {
    locs: Vec<Point>,
    rings: Vec<Ring>,
    mbr: Mbr,
    rows: usize,
    dim: usize,
}

impl RingRelation {
    /// Builds ring storage from a set of tuples.
    pub fn new(tuples: Vec<Tuple>) -> Self {
        let dim = tuples.first().map_or(0, Tuple::dim);
        assert!(tuples.iter().all(|t| t.dim() == dim), "mixed dimensionality in relation");
        let rows = tuples.len();
        let mut rings = Vec::with_capacity(dim);
        for j in 0..dim {
            // Group rows by value, preserving encounter order.
            let mut groups: Vec<(f64, Vec<u32>)> = Vec::new();
            for (r, t) in tuples.iter().enumerate() {
                let v = t.attrs[j];
                match groups.iter_mut().find(|(gv, _)| *gv == v) {
                    Some((_, rows)) => rows.push(r as u32),
                    None => groups.push((v, vec![r as u32])),
                }
            }
            let mut next = vec![0u32; rows];
            let mut holder_value = vec![None; rows];
            for (v, members) in &groups {
                for (k, &r) in members.iter().enumerate() {
                    next[r as usize] = members[(k + 1) % members.len()];
                }
                // The first member holds the external value pointer.
                holder_value[members[0] as usize] = Some(*v);
            }
            rings.push(Ring { next, holder_value, distinct: groups.len() });
        }
        let locs: Vec<Point> = tuples.iter().map(Tuple::location).collect();
        let mbr = Mbr::of_points(locs.iter().copied());
        RingRelation { locs, rings, mbr, rows, dim }
    }

    /// Reads attribute `j` of `row` by walking the ring, charging one hop
    /// per link followed.
    #[inline]
    fn value(&self, row: usize, j: usize, stats: &mut LocalStats) -> f64 {
        let ring = &self.rings[j];
        let mut r = row;
        loop {
            if let Some(v) = ring.holder_value[r] {
                return v;
            }
            stats.pointer_hops += 1;
            r = ring.next[r] as usize;
            debug_assert_ne!(r, row, "ring without a value holder");
        }
    }

    fn dominates(&self, a: usize, b: usize, stats: &mut LocalStats) -> bool {
        let mut strict = false;
        for j in 0..self.dim {
            let (va, vb) = (self.value(a, j, stats), self.value(b, j, stats));
            if va > vb {
                return false;
            }
            if va < vb {
                strict = true;
            }
        }
        strict
    }
}

impl DeviceRelation for RingRelation {
    fn model(&self) -> StorageModel {
        StorageModel::Ring
    }

    fn len(&self) -> usize {
        self.rows
    }

    fn dim(&self) -> usize {
        self.dim
    }

    fn tuple(&self, i: usize) -> Tuple {
        let mut throwaway = LocalStats::default();
        let attrs = (0..self.dim).map(|j| self.value(i, j, &mut throwaway)).collect();
        Tuple::new(self.locs[i].x, self.locs[i].y, attrs)
    }

    fn lower_bounds(&self) -> Option<Vec<f64>> {
        None
    }

    fn upper_bounds(&self) -> Option<skyline_core::vdr::UpperBounds> {
        None
    }

    fn storage_bytes(&self) -> usize {
        let locs = self.locs.len() * 16;
        let links: usize = self.rings.iter().map(|r| r.next.len() * 4).sum();
        // One external pointer + one stored value per distinct value.
        let values: usize = self.rings.iter().map(|r| r.distinct * (8 + 4)).sum();
        locs + links + values
    }

    fn local_skyline(&self, query: &LocalQuery) -> LocalSkylineOutcome {
        let mut stats = LocalStats::default();
        if query.region.misses(&self.mbr) {
            return LocalSkylineOutcome::skipped();
        }
        let r2 = query.region.radius * query.region.radius;
        let center = query.region.center;

        let mut window: Vec<usize> = Vec::new();
        for row in 0..self.rows {
            stats.tuples_scanned += 1;
            if !query.region.radius.is_infinite() && self.locs[row].dist2(center) > r2 {
                continue;
            }
            stats.in_range += 1;
            let mut dominated = false;
            let mut keep: Vec<usize> = Vec::with_capacity(window.len());
            for &w in &window {
                if dominated {
                    keep.push(w);
                    continue;
                }
                stats.value_comparisons += 1;
                if self.dominates(w, row, &mut stats) {
                    dominated = true;
                    keep.push(w);
                } else {
                    stats.value_comparisons += 1;
                    if !self.dominates(row, w, &mut stats) {
                        keep.push(w);
                    }
                }
            }
            window = keep;
            if !dominated {
                window.push(row);
            }
        }

        let unreduced: Vec<Tuple> = window.iter().map(|&r| self.tuple(r)).collect();
        let unreduced_len = unreduced.len();
        let reduced: Vec<Tuple> = if query.has_filters() {
            unreduced.into_iter().filter(|t| !query.eliminates(&t.attrs)).collect()
        } else {
            unreduced
        };
        let filter_candidate: Option<FilterTuple> =
            query.vdr_bounds.as_ref().and_then(|b| select_filter(&reduced, b));

        LocalSkylineOutcome {
            skyline: reduced,
            unreduced_len,
            skipped: false,
            filter_candidate,
            stats,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use skyline_core::region::QueryRegion;

    fn data() -> Vec<Tuple> {
        vec![
            Tuple::new(0.0, 0.0, vec![20.0, 7.0]),
            Tuple::new(1.0, 0.0, vec![40.0, 7.0]),
            Tuple::new(2.0, 0.0, vec![20.0, 5.0]),
            Tuple::new(3.0, 0.0, vec![100.0, 3.0]),
        ]
    }

    #[test]
    fn rings_link_equal_values() {
        let r = RingRelation::new(data());
        // Attribute 0: rows {0, 2} share 20.0; ring of size 2.
        assert_eq!(r.rings[0].next[0], 2);
        assert_eq!(r.rings[0].next[2], 0);
        assert!(r.rings[0].holder_value[0].is_some());
        assert!(r.rings[0].holder_value[2].is_none());
    }

    #[test]
    fn value_walks_ring_and_charges_hops() {
        let r = RingRelation::new(data());
        let mut stats = LocalStats::default();
        // Row 2 is not the holder for attribute 0 → ≥ 1 hop.
        assert_eq!(r.value(2, 0, &mut stats), 20.0);
        assert!(stats.pointer_hops >= 1);
        // Row 0 is the holder → 0 hops.
        let mut stats0 = LocalStats::default();
        assert_eq!(r.value(0, 0, &mut stats0), 20.0);
        assert_eq!(stats0.pointer_hops, 0);
    }

    #[test]
    fn tuple_round_trip() {
        let src = data();
        let r = RingRelation::new(src.clone());
        for (i, t) in src.iter().enumerate() {
            assert_eq!(&r.tuple(i).attrs, &t.attrs);
        }
    }

    #[test]
    fn skyline_matches_flat() {
        let src = data();
        let r = RingRelation::new(src.clone());
        let f = crate::FlatRelation::new(src);
        let q = LocalQuery::plain(QueryRegion::unbounded());
        let mut a: Vec<Vec<f64>> =
            r.local_skyline(&q).skyline.into_iter().map(|t| t.attrs).collect();
        let mut b: Vec<Vec<f64>> =
            f.local_skyline(&q).skyline.into_iter().map(|t| t.attrs).collect();
        a.sort_by(|x, y| crate::total_lex(x, y));
        b.sort_by(|x, y| crate::total_lex(x, y));
        assert_eq!(a, b);
    }

    #[test]
    fn skyline_scan_pays_chain_traversals() {
        // Many duplicates → long rings → many hops.
        let src: Vec<Tuple> = (0..100)
            .map(|i| Tuple::new(i as f64, 0.0, vec![(i % 3) as f64, (i % 2) as f64]))
            .collect();
        let r = RingRelation::new(src);
        let out = r.local_skyline(&LocalQuery::plain(QueryRegion::unbounded()));
        assert!(out.stats.pointer_hops > out.stats.value_comparisons);
    }
}
