//! # device-storage
//!
//! Storage models for the resource-constrained mobile devices of the ICDE
//! 2006 paper, and the device-local constrained-skyline algorithms that run
//! on top of them (Section 4).
//!
//! Four models are implemented:
//!
//! * [`FlatRelation`] (**FS**) — tuples stored sequentially with raw values;
//!   local skylines via BNL. The paper's baseline.
//! * [`HybridRelation`] (**HS**) — the paper's proposal: spatial coordinates
//!   inline, non-spatial attributes ID-encoded against per-attribute
//!   *sorted* domain arrays (byte-width IDs when the domain fits), MBR kept
//!   as four constants, rows sorted on the ID of the attribute with the most
//!   distinct values. Local skylines via the Fig. 4 ID-based SFS scan.
//! * [`DomainRelation`] — "domain storage" [Ammann et al. 1985], rejected by
//!   Section 4.1 because every value access goes through a tuple-to-value
//!   pointer; implemented so the rejection is benchmarkable.
//! * [`RingRelation`] — "ring storage" [PicoDBMS, VLDB 2000], rejected
//!   because reading a value must traverse an intra-relation pointer chain;
//!   also implemented for the ablation bench.
//! * [`SpatialRelation`] — flat tuples plus an R-tree over locations,
//!   probing the cost of the paper's "no extra index" assumption.
//!
//! All models implement [`DeviceRelation`] and must produce identical query
//! answers; they differ only in space and time. That equivalence is enforced
//! by unit and property tests.

pub mod domain_index;
pub mod domain_store;
pub mod flat;
pub mod hybrid;
pub mod persist;
pub mod ring_store;
pub mod spatial_index;
pub mod traits;

pub use domain_index::{AttributeDomain, IdArray};
pub use domain_store::DomainRelation;
pub use flat::FlatRelation;
pub use hybrid::HybridRelation;
pub use persist::{decode_relation, encode_relation, DecodeError};
pub use ring_store::RingRelation;
pub use spatial_index::SpatialRelation;
pub use traits::{DeviceRelation, LocalQuery, LocalSkylineOutcome, LocalStats, StorageModel};

/// NaN-safe lexicographic ordering on attribute vectors (`f64::total_cmp`
/// per element), for canonicalizing skylines in equivalence tests.
#[cfg(test)]
pub(crate) fn total_lex(a: &[f64], b: &[f64]) -> std::cmp::Ordering {
    a.iter()
        .zip(b)
        .map(|(x, y)| x.total_cmp(y))
        .find(|o| o.is_ne())
        .unwrap_or_else(|| a.len().cmp(&b.len()))
}
