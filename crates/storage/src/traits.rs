//! The interface every storage model exposes to the distributed layer.

use skyline_core::region::QueryRegion;
use skyline_core::vdr::{FilterTest, FilterTuple, UpperBounds};
use skyline_core::{DominanceTest, Tuple};

/// Which storage model a relation uses (for reporting and configuration).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum StorageModel {
    /// Flat storage (FS): sequential tuples, raw values, BNL scans.
    Flat,
    /// The paper's hybrid ID-based storage (HS).
    #[default]
    Hybrid,
    /// Domain storage [Ammann et al. 1985] (ablation only).
    Domain,
    /// Ring storage (PicoDBMS; ablation only).
    Ring,
    /// Flat tuples plus a spatial R-tree over locations (ablation of the
    /// paper's no-index assumption).
    SpatialIndex,
}

/// Everything a device needs to answer one local skyline request.
#[derive(Debug, Clone)]
pub struct LocalQuery {
    /// Spatial constraint of the distributed query.
    pub region: QueryRegion,
    /// The (primary) filtering tuple attached to the query, if any.
    pub filter: Option<FilterTuple>,
    /// Additional filtering tuples — the multi-filter extension the paper
    /// names as future work. Usually empty.
    pub extra_filters: Vec<FilterTuple>,
    /// How the filter eliminates tuples (paper: strict `<` on all dims).
    pub filter_test: FilterTest,
    /// Window dominance test for the scan (paper: `PaperStrict` on HS).
    pub dominance: DominanceTest,
    /// Upper bounds this device should use when computing VDRs for the
    /// dynamic-filter update. `None` disables the update (e.g. for the
    /// straightforward strategy).
    pub vdr_bounds: Option<UpperBounds>,
}

impl LocalQuery {
    /// A plain query: no filter, full dominance, no VDR bookkeeping.
    pub fn plain(region: QueryRegion) -> Self {
        LocalQuery {
            region,
            filter: None,
            extra_filters: Vec::new(),
            filter_test: FilterTest::default(),
            dominance: DominanceTest::Full,
            vdr_bounds: None,
        }
    }

    /// `true` when the query carries at least one filtering tuple.
    pub fn has_filters(&self) -> bool {
        self.filter.is_some() || !self.extra_filters.is_empty()
    }

    /// `true` when any attached filter eliminates a tuple with `attrs`.
    pub fn eliminates(&self, attrs: &[f64]) -> bool {
        self.filter
            .iter()
            .chain(&self.extra_filters)
            .any(|f| self.filter_test.eliminates(&f.attrs, attrs))
    }

    /// `true` when any attached filter dominates the virtual best corner
    /// `lower`, allowing the whole relation to be skipped.
    pub fn skips_relation(&self, lower: &[f64]) -> bool {
        self.filter
            .iter()
            .chain(&self.extra_filters)
            .any(|f| filter_skips_relation(f, lower, self.filter_test))
    }
}

/// Counters describing how much work one local query cost — the raw
/// material for the paper's Fig. 5 argument (ID comparisons are cheaper
/// than raw-value comparisons; sorted domains save comparisons).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LocalStats {
    /// Rows read from storage.
    pub tuples_scanned: u64,
    /// Rows surviving the spatial range check.
    pub in_range: u64,
    /// Dominance tests between raw attribute values.
    pub value_comparisons: u64,
    /// Dominance tests between attribute IDs.
    pub id_comparisons: u64,
    /// Pointer dereferences / chain hops (domain & ring storage only).
    pub pointer_hops: u64,
}

/// Result of one device-local skyline query.
#[derive(Debug, Clone)]
pub struct LocalSkylineOutcome {
    /// `SK'_i`: the reduced local skyline to transmit.
    pub skyline: Vec<Tuple>,
    /// `|SK_i|`: size of the unreduced local skyline (before the filtering
    /// tuple was applied) — the denominator of the paper's DRR formula.
    pub unreduced_len: usize,
    /// `true` when the whole relation was skipped (MBR miss, or the filter
    /// dominated the virtual best corner of the local domains).
    pub skipped: bool,
    /// The locally best filter candidate (max VDR over the reduced skyline),
    /// already compared against the incoming filter by the caller's rules.
    /// `None` when `vdr_bounds` was `None` or the skyline is empty.
    pub filter_candidate: Option<FilterTuple>,
    /// Work counters.
    pub stats: LocalStats,
}

impl LocalSkylineOutcome {
    /// An outcome for a device that skipped the query entirely.
    pub fn skipped() -> Self {
        LocalSkylineOutcome {
            skyline: Vec::new(),
            unreduced_len: 0,
            skipped: true,
            filter_candidate: None,
            stats: LocalStats::default(),
        }
    }
}

/// A local relation `R_i` stored on one device, able to answer constrained
/// skyline queries. All implementations must return the same `skyline` for
/// the same data and query (modulo tuple order).
pub trait DeviceRelation {
    /// Which model this is.
    fn model(&self) -> StorageModel;

    /// Number of stored tuples.
    fn len(&self) -> usize;

    /// `true` when the relation holds no tuples.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of non-spatial attributes.
    fn dim(&self) -> usize;

    /// Materializes row `i` (test/diagnostic path; not used by queries).
    fn tuple(&self, i: usize) -> Tuple;

    /// Per-attribute local minima `l_j`, if the model can provide them in
    /// O(1) (hybrid keeps sorted domains; flat returns `None` — that is the
    /// paper's point).
    fn lower_bounds(&self) -> Option<Vec<f64>>;

    /// Per-attribute local maxima `h_j` (the `UNE` bounds), if O(1).
    fn upper_bounds(&self) -> Option<UpperBounds>;

    /// Approximate storage footprint in bytes (for the space comparison).
    fn storage_bytes(&self) -> usize;

    /// Runs the device-local constrained skyline query.
    fn local_skyline(&self, query: &LocalQuery) -> LocalSkylineOutcome;
}

impl<T: DeviceRelation + ?Sized> DeviceRelation for Box<T> {
    fn model(&self) -> StorageModel {
        (**self).model()
    }
    fn len(&self) -> usize {
        (**self).len()
    }
    fn dim(&self) -> usize {
        (**self).dim()
    }
    fn tuple(&self, i: usize) -> Tuple {
        (**self).tuple(i)
    }
    fn lower_bounds(&self) -> Option<Vec<f64>> {
        (**self).lower_bounds()
    }
    fn upper_bounds(&self) -> Option<UpperBounds> {
        (**self).upper_bounds()
    }
    fn storage_bytes(&self) -> usize {
        (**self).storage_bytes()
    }
    fn local_skyline(&self, query: &LocalQuery) -> LocalSkylineOutcome {
        (**self).local_skyline(query)
    }
}

/// Whole-relation skip check (Fig. 4, second guard): can the filter tuple
/// dominate even the virtual best tuple `l = (l_1 … l_n)` of this device?
///
/// Deviation from the paper: the paper skips when `tp_flt.p_j ≤ l_j` for all
/// `j`, which in the all-equal corner case can drop a tuple that merely
/// *ties* the filter on every attribute (such a tuple is itself a legitimate
/// skyline member). We therefore require genuine dominance under the active
/// filter test, which is identical except in that corner case.
pub fn filter_skips_relation(filter: &FilterTuple, lower: &[f64], test: FilterTest) -> bool {
    test.eliminates(&filter.attrs, lower)
}

#[cfg(test)]
mod tests {
    use super::*;
    use skyline_core::Point;

    #[test]
    fn plain_query_defaults() {
        let q = LocalQuery::plain(QueryRegion::new(Point::new(0.0, 0.0), 10.0));
        assert!(q.filter.is_none());
        assert!(q.vdr_bounds.is_none());
        assert_eq!(q.dominance, DominanceTest::Full);
    }

    #[test]
    fn skip_check_requires_dominating_the_corner() {
        let bounds = UpperBounds::new(vec![100.0, 100.0]);
        let lower = vec![10.0, 10.0];
        let strong = FilterTuple::new(vec![5.0, 5.0], &bounds);
        let tie = FilterTuple::new(vec![10.0, 10.0], &bounds);
        let weak = FilterTuple::new(vec![50.0, 5.0], &bounds);

        assert!(filter_skips_relation(&strong, &lower, FilterTest::StrictAll));
        assert!(filter_skips_relation(&strong, &lower, FilterTest::Dominance));
        // All-equal corner: never skip (the tying local tuple must survive).
        assert!(!filter_skips_relation(&tie, &lower, FilterTest::StrictAll));
        assert!(!filter_skips_relation(&tie, &lower, FilterTest::Dominance));
        assert!(!filter_skips_relation(&weak, &lower, FilterTest::StrictAll));
    }

    #[test]
    fn skipped_outcome_is_empty() {
        let o = LocalSkylineOutcome::skipped();
        assert!(o.skipped && o.skyline.is_empty() && o.unreduced_len == 0);
    }
}
