//! Flat storage (FS): the baseline the paper compares against.
//!
//! Tuples are stored sequentially with raw attribute values, no sort order,
//! no domain arrays, no MBR. Every local skyline query is a BNL scan over
//! raw values with an inline spatial check, exactly as the paper evaluates
//! FS ("For the FS scheme, we use the simple BNL algorithm since no
//! multi-dimensional index or sort order is assumed to be available").

use skyline_core::dominance::dominates;
use skyline_core::vdr::{select_filter, FilterTuple, UpperBounds};
use skyline_core::Tuple;

use crate::traits::{DeviceRelation, LocalQuery, LocalSkylineOutcome, LocalStats, StorageModel};

/// A local relation in flat storage.
#[derive(Debug, Clone, Default)]
pub struct FlatRelation {
    tuples: Vec<Tuple>,
    dim: usize,
}

impl FlatRelation {
    /// Builds a flat relation. All tuples must share one dimensionality.
    pub fn new(tuples: Vec<Tuple>) -> Self {
        let dim = tuples.first().map_or(0, Tuple::dim);
        assert!(tuples.iter().all(|t| t.dim() == dim), "mixed dimensionality in relation");
        FlatRelation { tuples, dim }
    }

    /// Read access to the raw tuples.
    pub fn tuples(&self) -> &[Tuple] {
        &self.tuples
    }
}

impl DeviceRelation for FlatRelation {
    fn model(&self) -> StorageModel {
        StorageModel::Flat
    }

    fn len(&self) -> usize {
        self.tuples.len()
    }

    fn dim(&self) -> usize {
        self.dim
    }

    fn tuple(&self, i: usize) -> Tuple {
        self.tuples[i].clone()
    }

    /// Flat storage keeps no domain arrays: bounds would cost a full scan,
    /// which is exactly why the paper's skip check needs hybrid storage.
    fn lower_bounds(&self) -> Option<Vec<f64>> {
        None
    }

    fn upper_bounds(&self) -> Option<UpperBounds> {
        None
    }

    fn storage_bytes(&self) -> usize {
        // (x, y) + n raw f64 attributes per tuple.
        self.tuples.len() * 8 * (self.dim + 2)
    }

    fn local_skyline(&self, query: &LocalQuery) -> LocalSkylineOutcome {
        let mut stats = LocalStats::default();
        let r2 = query.region.radius * query.region.radius;
        let center = query.region.center;

        // BNL over the in-range tuples, raw-value comparisons throughout.
        let mut window: Vec<usize> = Vec::new();
        for (i, t) in self.tuples.iter().enumerate() {
            stats.tuples_scanned += 1;
            if !query.region.radius.is_infinite() && t.dist2(center) > r2 {
                continue;
            }
            stats.in_range += 1;
            let mut dominated = false;
            window.retain(|&w| {
                if dominated {
                    return true;
                }
                stats.value_comparisons += 1;
                if dominates(&self.tuples[w].attrs, &t.attrs) {
                    dominated = true;
                    true
                } else {
                    stats.value_comparisons += 1;
                    !dominates(&t.attrs, &self.tuples[w].attrs)
                }
            });
            if !dominated {
                window.push(i);
            }
        }

        let unreduced: Vec<Tuple> = window.iter().map(|&i| self.tuples[i].clone()).collect();
        let unreduced_len = unreduced.len();

        // Apply the filtering tuple after the scan (Fig. 4 order), then pick
        // the best local filter candidate from the survivors.
        let reduced: Vec<Tuple> = if query.has_filters() {
            unreduced.into_iter().filter(|t| !query.eliminates(&t.attrs)).collect()
        } else {
            unreduced
        };
        let filter_candidate: Option<FilterTuple> =
            query.vdr_bounds.as_ref().and_then(|b| select_filter(&reduced, b));

        LocalSkylineOutcome {
            skyline: reduced,
            unreduced_len,
            skipped: false,
            filter_candidate,
            stats,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use skyline_core::region::{Point, QueryRegion};
    use skyline_core::vdr::FilterTest;

    fn rel() -> FlatRelation {
        FlatRelation::new(vec![
            Tuple::new(0.0, 0.0, vec![20.0, 7.0]),
            Tuple::new(3.0, 0.0, vec![40.0, 5.0]),
            Tuple::new(0.0, 4.0, vec![80.0, 7.0]),
            Tuple::new(50.0, 50.0, vec![1.0, 1.0]), // far away
        ])
    }

    #[test]
    fn local_skyline_respects_range() {
        let q = LocalQuery::plain(QueryRegion::new(Point::new(0.0, 0.0), 5.0));
        let out = rel().local_skyline(&q);
        // (1,1) is out of range; (80,7) is dominated by (20,7).
        assert_eq!(out.skyline.len(), 2);
        assert_eq!(out.unreduced_len, 2);
        assert!(!out.skipped);
        assert_eq!(out.stats.in_range, 3);
        assert_eq!(out.stats.tuples_scanned, 4);
    }

    #[test]
    fn filter_reduces_transmission_set() {
        let bounds = UpperBounds::new(vec![200.0, 10.0]);
        let q = LocalQuery {
            filter: Some(FilterTuple::new(vec![10.0, 2.0], &bounds)),
            filter_test: FilterTest::StrictAll,
            vdr_bounds: Some(bounds),
            ..LocalQuery::plain(QueryRegion::unbounded())
        };
        let out = rel().local_skyline(&q);
        // Unbounded region: (1,1) dominates every other tuple, so the
        // unreduced skyline is just {(1,1)} — which the filter (10,2) does
        // not strictly beat (1 < 1 fails on both attributes).
        assert_eq!(out.unreduced_len, 1);
        assert_eq!(out.skyline.len(), 1);
        assert_eq!(out.skyline[0].attrs, vec![1.0, 1.0]);
        let cand = out.filter_candidate.expect("bounds were provided");
        assert_eq!(cand.attrs, vec![1.0, 1.0]);
    }

    #[test]
    fn no_bounds_no_candidate() {
        let q = LocalQuery::plain(QueryRegion::unbounded());
        let out = rel().local_skyline(&q);
        assert!(out.filter_candidate.is_none());
    }

    #[test]
    fn flat_offers_no_constant_time_bounds() {
        let r = rel();
        assert!(r.lower_bounds().is_none());
        assert!(r.upper_bounds().is_none());
    }

    #[test]
    fn storage_bytes_are_raw() {
        assert_eq!(rel().storage_bytes(), 4 * 8 * 4);
    }

    #[test]
    #[should_panic(expected = "mixed dimensionality")]
    fn mixed_dims_rejected() {
        FlatRelation::new(vec![
            Tuple::new(0.0, 0.0, vec![1.0]),
            Tuple::new(1.0, 0.0, vec![1.0, 2.0]),
        ]);
    }

    #[test]
    fn empty_relation() {
        let r = FlatRelation::new(vec![]);
        let out = r.local_skyline(&LocalQuery::plain(QueryRegion::unbounded()));
        assert!(out.skyline.is_empty());
        assert!(r.is_empty());
    }
}
