//! Offline stand-in for the `rand` crate (0.9 API subset).
//!
//! The build environment has no registry access, so the workspace vendors
//! the small slice of `rand` it actually uses: a seedable deterministic
//! generator ([`rngs::StdRng`]) and uniform range sampling
//! ([`Rng::random_range`]) over integer and float ranges.
//!
//! The generator is xoshiro256++ seeded through SplitMix64 — *not* the
//! upstream ChaCha12 — so absolute streams differ from crates.io `rand`,
//! but every property the workspace relies on holds: the stream is a pure
//! function of the seed, `random_range` is uniform over its range, and
//! distinct seeds decorrelate. All experiment output in this repo is
//! defined relative to this generator.

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// Next raw word of the stream.
    fn next_u64(&mut self) -> u64;
}

/// Construction of a generator from seed material.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed (deterministic).
    fn seed_from_u64(seed: u64) -> Self;
}

/// User-facing sampling methods, available on every [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform sample from `range` (half-open or inclusive; integer or
    /// float).
    ///
    /// # Panics
    /// Panics when the range is empty.
    fn random_range<R: SampleRange>(&mut self, range: R) -> R::Output
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// A uniformly random `bool`.
    fn random_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        unit_f64(self.next_u64()) < p
    }
}

impl<T: RngCore> Rng for T {}

/// Maps a raw word to `[0, 1)` with 53 bits of precision.
#[inline]
fn unit_f64(word: u64) -> f64 {
    (word >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// A range that can be sampled uniformly. Implemented for `Range` and
/// `RangeInclusive` over the numeric types the workspace uses.
pub trait SampleRange {
    /// Element type of the range.
    type Output;
    /// Draws one uniform sample.
    fn sample_from<R: RngCore>(self, rng: &mut R) -> Self::Output;
}

/// Uniform integer in `[0, n)` without modulo bias (Lemire's method).
#[inline]
fn bounded_u64<R: RngCore>(rng: &mut R, n: u64) -> u64 {
    debug_assert!(n > 0);
    loop {
        let x = rng.next_u64();
        let m = (x as u128).wrapping_mul(n as u128);
        let lo = m as u64;
        if lo >= n.wrapping_neg() % n {
            return (m >> 64) as u64;
        }
        // Rejected a biased sample; redraw.
        let _ = lo;
    }
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange for std::ops::Range<$t> {
            type Output = $t;
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + bounded_u64(rng, span) as i128) as $t
            }
        }
        impl SampleRange for std::ops::RangeInclusive<$t> {
            type Output = $t;
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                if span > u64::MAX as u128 {
                    return rng.next_u64() as $t; // full-width range
                }
                (lo as i128 + bounded_u64(rng, span as u64) as i128) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

// Float sampling is `f64`-only: a second `f32` impl would make unannotated
// literal ranges like `0.0..1.0` ambiguous at every call site.
impl SampleRange for std::ops::Range<f64> {
    type Output = f64;
    fn sample_from<R: RngCore>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let v = self.start + (self.end - self.start) * unit_f64(rng.next_u64());
        // Guard the open upper bound against rounding.
        if v >= self.end {
            self.start
        } else {
            v
        }
    }
}

impl SampleRange for std::ops::RangeInclusive<f64> {
    type Output = f64;
    fn sample_from<R: RngCore>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "cannot sample empty range");
        lo + (hi - lo) * unit_f64(rng.next_u64())
    }
}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256++.
    ///
    /// Small, fast, and with 256 bits of state — more than enough for
    /// simulation workloads. Seeded via SplitMix64 so that nearby seeds
    /// produce uncorrelated streams.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    #[inline]
    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let out = self.s[0].wrapping_add(self.s[3]).rotate_left(23).wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            out
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.random_range(0u64..1_000_000), b.random_range(0u64..1_000_000));
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let va: Vec<u64> = (0..8).map(|_| a.random_range(0u64..u64::MAX)).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.random_range(0u64..u64::MAX)).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn float_ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.random_range(2.5f64..3.5);
            assert!((2.5..3.5).contains(&v));
            let w = rng.random_range(-0.15f64..0.15);
            assert!((-0.15..0.15).contains(&w));
        }
    }

    #[test]
    fn int_ranges_hit_all_values() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut seen = [false; 5];
        for _ in 0..1_000 {
            seen[rng.random_range(0usize..5)] = true;
        }
        assert!(seen.iter().all(|&s| s));
        let mut seen_inc = [false; 3];
        for _ in 0..1_000 {
            seen_inc[rng.random_range(1usize..=3) - 1] = true;
        }
        assert!(seen_inc.iter().all(|&s| s));
    }

    #[test]
    fn uniformity_is_roughly_flat() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut buckets = [0u32; 10];
        for _ in 0..100_000 {
            buckets[rng.random_range(0usize..10)] += 1;
        }
        for &b in &buckets {
            assert!((8_000..12_000).contains(&b), "bucket count {b} far from 10k");
        }
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        let mut rng = StdRng::seed_from_u64(0);
        let _ = rng.random_range(5u32..5);
    }
}
