//! Uniform-grid partitioning of a global relation onto mobile devices.
//!
//! Section 5.2.1: "Based on a uniform grid on the spatial domain, a global
//! relation R is divided into local relations (the R_i s), each containing
//! all the tuples within its corresponding grid cell", with `m = g²` devices
//! for `g ∈ {3 … 10}`.
//!
//! An optional overlap fraction copies tuples into a neighbouring cell as
//! well, producing the `R_i ∩ R_j ≠ ∅` overlaps the problem statement
//! allows — used by tests of duplicate elimination.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use skyline_core::region::Mbr;
use skyline_core::{Point, Tuple};

use crate::spatial::SpatialExtent;

/// Uniform `g × g` grid over a spatial extent.
#[derive(Debug, Clone, Copy)]
pub struct GridPartitioner {
    /// Cells per side.
    pub g: usize,
    /// The spatial extent being partitioned.
    pub space: SpatialExtent,
    /// Probability that a tuple is *also* stored in a random neighbour cell
    /// (0.0 = disjoint partitions, the experiments' default).
    pub overlap: f64,
    /// Seed for overlap decisions.
    pub seed: u64,
}

/// Result of partitioning: one local relation per device plus geometry.
#[derive(Debug, Clone)]
pub struct Partitioned {
    /// `parts[i]` is device `i`'s local relation `R_i`.
    pub parts: Vec<Vec<Tuple>>,
    /// The grid cell (as an MBR) owned by each device.
    pub cells: Vec<Mbr>,
    /// Cells per side.
    pub g: usize,
}

impl Partitioned {
    /// Total number of devices (`m = g²`).
    pub fn num_devices(&self) -> usize {
        self.parts.len()
    }

    /// Centre point of device `i`'s cell — used as the device's initial
    /// position in the simulations.
    pub fn cell_center(&self, i: usize) -> Point {
        let c = &self.cells[i];
        Point::new((c.x_min + c.x_max) / 2.0, (c.y_min + c.y_max) / 2.0)
    }

    /// Grid-adjacency (4-neighbourhood) of device `i` — the forwarding
    /// topology of the paper's static pre-tests.
    pub fn grid_neighbors(&self, i: usize) -> Vec<usize> {
        let g = self.g;
        let (r, c) = (i / g, i % g);
        let mut out = Vec::with_capacity(4);
        if r > 0 {
            out.push(i - g);
        }
        if r + 1 < g {
            out.push(i + g);
        }
        if c > 0 {
            out.push(i - 1);
        }
        if c + 1 < g {
            out.push(i + 1);
        }
        out
    }
}

impl GridPartitioner {
    /// Disjoint partitioning with the paper's defaults.
    pub fn new(g: usize, space: SpatialExtent) -> Self {
        assert!(g > 0, "grid must have at least one cell");
        GridPartitioner { g, space, overlap: 0.0, seed: 0 }
    }

    /// Adds an overlap fraction.
    pub fn with_overlap(mut self, overlap: f64, seed: u64) -> Self {
        assert!((0.0..=1.0).contains(&overlap), "overlap must be a probability");
        self.overlap = overlap;
        self.seed = seed;
        self
    }

    /// Cell index of a location.
    pub fn cell_of(&self, p: Point) -> usize {
        let g = self.g as f64;
        let cx = ((p.x / self.space.width * g) as usize).min(self.g - 1);
        let cy = ((p.y / self.space.height * g) as usize).min(self.g - 1);
        cy * self.g + cx
    }

    /// Partitions `data` into `g²` local relations.
    pub fn partition(&self, data: &[Tuple]) -> Partitioned {
        let m = self.g * self.g;
        let mut parts: Vec<Vec<Tuple>> = vec![Vec::new(); m];
        let mut rng = StdRng::seed_from_u64(self.seed);
        for t in data {
            let cell = self.cell_of(t.location());
            parts[cell].push(t.clone());
            if self.overlap > 0.0 && rng.random_range(0.0..1.0) < self.overlap {
                let neighbors = self.neighbor_cells(cell);
                if !neighbors.is_empty() {
                    let pick = neighbors[rng.random_range(0..neighbors.len())];
                    parts[pick].push(t.clone());
                }
            }
        }
        let cells = (0..m).map(|i| self.cell_rect(i)).collect();
        Partitioned { parts, cells, g: self.g }
    }

    /// The rectangle of cell `i`.
    pub fn cell_rect(&self, i: usize) -> Mbr {
        let g = self.g;
        let (r, c) = (i / g, i % g);
        let w = self.space.width / g as f64;
        let h = self.space.height / g as f64;
        Mbr {
            x_min: c as f64 * w,
            x_max: (c + 1) as f64 * w,
            y_min: r as f64 * h,
            y_max: (r + 1) as f64 * h,
        }
    }

    fn neighbor_cells(&self, i: usize) -> Vec<usize> {
        let g = self.g;
        let (r, c) = (i / g, i % g);
        let mut out = Vec::with_capacity(4);
        if r > 0 {
            out.push(i - g);
        }
        if r + 1 < g {
            out.push(i + g);
        }
        if c > 0 {
            out.push(i - 1);
        }
        if c + 1 < g {
            out.push(i + 1);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::distributions::{DataSpec, Distribution};

    fn data() -> Vec<Tuple> {
        DataSpec::local_experiment(1000, 2, Distribution::Independent, 3).generate()
    }

    #[test]
    fn disjoint_partition_preserves_all_tuples() {
        let part = GridPartitioner::new(5, SpatialExtent::PAPER).partition(&data());
        let total: usize = part.parts.iter().map(Vec::len).sum();
        assert_eq!(total, 1000);
        assert_eq!(part.num_devices(), 25);
    }

    #[test]
    fn every_tuple_lands_in_its_cell() {
        let p = GridPartitioner::new(4, SpatialExtent::PAPER);
        let part = p.partition(&data());
        for (i, rel) in part.parts.iter().enumerate() {
            let rect = &part.cells[i];
            for t in rel {
                assert!(rect.contains(t.location()), "tuple outside its cell");
            }
        }
    }

    #[test]
    fn overlap_duplicates_some_tuples() {
        let p = GridPartitioner::new(3, SpatialExtent::PAPER).with_overlap(0.5, 9);
        let part = p.partition(&data());
        let total: usize = part.parts.iter().map(Vec::len).sum();
        assert!(total > 1000, "overlap should copy tuples ({total})");
        assert!(total < 2000);
    }

    #[test]
    fn cell_of_is_consistent_with_cell_rect() {
        let p = GridPartitioner::new(7, SpatialExtent::PAPER);
        for t in data().iter().take(200) {
            let cell = p.cell_of(t.location());
            assert!(p.cell_rect(cell).contains(t.location()));
        }
    }

    #[test]
    fn grid_neighbors_form_symmetric_adjacency() {
        let p = GridPartitioner::new(4, SpatialExtent::PAPER).partition(&data());
        for i in 0..16 {
            for &j in &p.grid_neighbors(i) {
                assert!(p.grid_neighbors(j).contains(&i), "asymmetric edge {i}-{j}");
            }
        }
        // Corner has 2 neighbours, centre has 4.
        assert_eq!(p.grid_neighbors(0).len(), 2);
        assert_eq!(p.grid_neighbors(5).len(), 4);
    }

    #[test]
    fn cell_centers_lie_in_their_cells() {
        let p = GridPartitioner::new(3, SpatialExtent::PAPER).partition(&data());
        for i in 0..9 {
            assert!(p.cells[i].contains(p.cell_center(i)));
        }
    }

    #[test]
    fn boundary_coordinates_clamp_to_last_cell() {
        let p = GridPartitioner::new(5, SpatialExtent::PAPER);
        assert_eq!(p.cell_of(Point::new(999.9999, 999.9999)), 24);
        assert_eq!(p.cell_of(Point::new(0.0, 0.0)), 0);
    }
}
