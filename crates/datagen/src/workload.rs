//! Query workload generation for the MANET simulations.
//!
//! Section 5.2.1: "Every mobile device issues 1 to 5 queries at random times
//! during the simulation. Queries of different devices can coexist, while a
//! single device does not issue a new query if it has one in progress."
//!
//! The workload generator emits *desired issue times*; the runtime defers a
//! request while the device's previous query is still in flight, which
//! implements the one-in-progress rule.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One query a device wants to issue.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QueryRequest {
    /// Issuing device.
    pub device: usize,
    /// Desired issue time, seconds from simulation start.
    pub at_seconds: f64,
    /// Distance of interest `d`.
    pub radius: f64,
}

/// Workload parameters.
#[derive(Debug, Clone, Copy)]
pub struct WorkloadSpec {
    /// Number of devices.
    pub num_devices: usize,
    /// Simulation horizon in seconds (paper: 2 h = 7200 s).
    pub horizon_seconds: f64,
    /// Minimum queries per device (paper: 1).
    pub min_queries: usize,
    /// Maximum queries per device (paper: 5).
    pub max_queries: usize,
    /// Distance of interest, same for all queries of one experiment
    /// (paper: 100 / 250 / 500).
    pub radius: f64,
    /// RNG seed.
    pub seed: u64,
}

impl WorkloadSpec {
    /// The paper's simulation workload with a given radius.
    pub fn paper(num_devices: usize, radius: f64, seed: u64) -> Self {
        WorkloadSpec {
            num_devices,
            horizon_seconds: 7200.0,
            min_queries: 1,
            max_queries: 5,
            radius,
            seed,
        }
    }

    /// Generates the workload, sorted by issue time.
    pub fn generate(&self) -> Vec<QueryRequest> {
        assert!(self.min_queries >= 1 && self.max_queries >= self.min_queries);
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut out = Vec::new();
        for device in 0..self.num_devices {
            let k = rng.random_range(self.min_queries..=self.max_queries);
            for _ in 0..k {
                out.push(QueryRequest {
                    device,
                    at_seconds: rng.random_range(0.0..self.horizon_seconds),
                    radius: self.radius,
                });
            }
        }
        out.sort_by(|a, b| a.at_seconds.partial_cmp(&b.at_seconds).unwrap());
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn per_device_counts_within_bounds() {
        let w = WorkloadSpec::paper(20, 250.0, 4).generate();
        for d in 0..20 {
            let k = w.iter().filter(|q| q.device == d).count();
            assert!((1..=5).contains(&k), "device {d} issued {k} queries");
        }
    }

    #[test]
    fn sorted_by_time_and_within_horizon() {
        let w = WorkloadSpec::paper(10, 100.0, 8).generate();
        for pair in w.windows(2) {
            assert!(pair[0].at_seconds <= pair[1].at_seconds);
        }
        assert!(w.iter().all(|q| (0.0..7200.0).contains(&q.at_seconds)));
    }

    #[test]
    fn deterministic() {
        let a = WorkloadSpec::paper(10, 500.0, 77).generate();
        let b = WorkloadSpec::paper(10, 500.0, 77).generate();
        assert_eq!(a, b);
    }

    #[test]
    fn radius_is_propagated() {
        let w = WorkloadSpec::paper(5, 250.0, 1).generate();
        assert!(w.iter().all(|q| q.radius == 250.0));
    }

    #[test]
    #[should_panic]
    fn degenerate_bounds_rejected() {
        WorkloadSpec { min_queries: 2, max_queries: 1, ..WorkloadSpec::paper(3, 100.0, 0) }
            .generate();
    }
}
