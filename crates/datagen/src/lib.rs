//! # datagen
//!
//! Synthetic data and workload generators reproducing the paper's
//! experimental setup (Section 5, Tables 6 and 7):
//!
//! * independent / correlated / anti-correlated non-spatial attributes
//!   (the Börzsönyi et al. generator definitions used throughout the
//!   skyline literature);
//! * uniform spatial placement in a `1000 × 1000` extent with unique
//!   locations;
//! * uniform-grid partitioning of a global relation into `g × g` local
//!   relations, one per mobile device (optionally with overlap, to exercise
//!   duplicate elimination);
//! * the paper's worked hotel examples (Tables 2–5) verbatim;
//! * query workloads (each device issues 1–5 queries at random times).
//!
//! Everything is deterministic given a seed.
//!
//! ```
//! use datagen::{DataSpec, Distribution, GridPartitioner, SpatialExtent};
//!
//! let data = DataSpec::manet_experiment(1_000, 2, Distribution::AntiCorrelated, 1).generate();
//! let parts = GridPartitioner::new(3, SpatialExtent::PAPER).partition(&data);
//! assert_eq!(parts.num_devices(), 9);
//! assert_eq!(parts.parts.iter().map(Vec::len).sum::<usize>(), 1_000);
//! ```

pub mod distributions;
pub mod grid;
pub mod hotels;
pub mod spatial;
pub mod workload;

pub use distributions::{DataSpec, Distribution};
pub use grid::{GridPartitioner, Partitioned};
pub use spatial::{SpatialExtent, SpatialPattern};
pub use workload::{QueryRequest, WorkloadSpec};
