//! The paper's worked hotel examples, Tables 2–5, verbatim.
//!
//! Relations `R_1 … R_4` with schema (price, rating), smaller is better on
//! both. The locations are synthetic (the paper's tables have none) but
//! unique, one grid row per relation, so the examples also exercise
//! duplicate-free merging.

use skyline_core::Tuple;

/// Table 2 — relation `R_1` on device `M_1` (six hotels `h_11 … h_16`).
pub fn r1() -> Vec<Tuple> {
    vec![
        Tuple::new(10.0, 1.0, vec![20.0, 7.0]),  // h11
        Tuple::new(20.0, 1.0, vec![40.0, 5.0]),  // h12
        Tuple::new(30.0, 1.0, vec![80.0, 7.0]),  // h13
        Tuple::new(40.0, 1.0, vec![80.0, 4.0]),  // h14
        Tuple::new(50.0, 1.0, vec![100.0, 7.0]), // h15
        Tuple::new(60.0, 1.0, vec![100.0, 3.0]), // h16
    ]
}

/// Table 3 — relation `R_2` on device `M_2` (five hotels `h_21 … h_25`).
pub fn r2() -> Vec<Tuple> {
    vec![
        Tuple::new(10.0, 2.0, vec![60.0, 3.0]),  // h21
        Tuple::new(20.0, 2.0, vec![90.0, 2.0]),  // h22
        Tuple::new(30.0, 2.0, vec![120.0, 1.0]), // h23
        Tuple::new(40.0, 2.0, vec![140.0, 2.0]), // h24
        Tuple::new(50.0, 2.0, vec![100.0, 4.0]), // h25
    ]
}

/// Table 4 — relation `R_3` on device `M_3` (three hotels `h_31 … h_33`).
pub fn r3() -> Vec<Tuple> {
    vec![
        Tuple::new(10.0, 3.0, vec![60.0, 3.0]),  // h31
        Tuple::new(20.0, 3.0, vec![80.0, 5.0]),  // h32
        Tuple::new(30.0, 3.0, vec![120.0, 4.0]), // h33
    ]
}

/// Table 5 — relation `R_4` on device `M_4` (three hotels `h_41 … h_43`).
pub fn r4() -> Vec<Tuple> {
    vec![
        Tuple::new(10.0, 4.0, vec![80.0, 2.0]),  // h41
        Tuple::new(20.0, 4.0, vec![120.0, 1.0]), // h42
        Tuple::new(30.0, 4.0, vec![140.0, 2.0]), // h43
    ]
}

/// The global attribute upper bounds the examples assume: price ≤ 200,
/// rating ≤ 10.
pub fn global_bounds() -> Vec<f64> {
    vec![200.0, 10.0]
}

#[cfg(test)]
mod tests {
    use super::*;
    use skyline_core::algo::{materialize, normalize, Algorithm};

    fn attrs_of(sky: Vec<Tuple>) -> Vec<Vec<f64>> {
        let mut v: Vec<Vec<f64>> = sky.into_iter().map(|t| t.attrs).collect();
        v.sort_by(|a, b| a.partial_cmp(b).unwrap());
        v
    }

    #[test]
    fn skyline_of_r1_matches_paper() {
        // "the skyline … on M1 is {h11, h12, h14, h16}"
        let data = r1();
        let idx = normalize(Algorithm::Bnl.skyline_indices(&data));
        assert_eq!(idx, vec![0, 1, 3, 5]);
    }

    #[test]
    fn skyline_of_r2_matches_paper() {
        // "The skyline on M2 is {h21, h22, h23}"
        let data = r2();
        let idx = normalize(Algorithm::Bnl.skyline_indices(&data));
        assert_eq!(idx, vec![0, 1, 2]);
    }

    #[test]
    fn skyline_of_r3_matches_paper() {
        // "that on M3 is {h31}"
        let data = r3();
        let idx = Algorithm::Bnl.skyline_indices(&data);
        assert_eq!(idx, vec![0]);
    }

    #[test]
    fn skyline_of_r4_matches_paper() {
        // "The local skyline on M4 is {h41, h42}"
        let data = r4();
        let idx = normalize(Algorithm::Bnl.skyline_indices(&data));
        assert_eq!(idx, vec![0, 1]);
    }

    #[test]
    fn relations_share_schema() {
        for rel in [r1(), r2(), r3(), r4()] {
            assert!(rel.iter().all(|t| t.dim() == 2));
        }
    }

    #[test]
    fn all_locations_unique_across_relations() {
        let mut locs: Vec<(u64, u64)> = [r1(), r2(), r3(), r4()]
            .into_iter()
            .flatten()
            .map(|t| (t.x.to_bits(), t.y.to_bits()))
            .collect();
        let n = locs.len();
        locs.sort_unstable();
        locs.dedup();
        assert_eq!(locs.len(), n);
    }

    #[test]
    fn global_skyline_of_r1_r2() {
        // Union skyline of the Section 3.2 example: h11, h12 (from R1) and
        // h21, h22, h23 (from R2); h14 and h16 fall to h21/h22.
        let mut union = r1();
        union.extend(r2());
        let sky = attrs_of(materialize(&union, &Algorithm::Bnl.skyline_indices(&union)));
        assert_eq!(
            sky,
            vec![
                vec![20.0, 7.0],  // h11
                vec![40.0, 5.0],  // h12
                vec![60.0, 3.0],  // h21
                vec![90.0, 2.0],  // h22
                vec![120.0, 1.0], // h23
            ]
        );
    }
}
