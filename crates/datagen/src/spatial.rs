//! Spatial placement of sites.

use rand::rngs::StdRng;
use rand::Rng;
use skyline_core::Point;
use std::collections::HashSet;

/// How sites are placed in the extent.
///
/// The paper distributes tuples "randomly within a 1000 × 1000 spatial
/// domain" (uniform); [`SpatialPattern::Clustered`] adds the realistic
/// alternative — points of interest concentrate in hotspots (city centres,
/// malls) — for robustness studies beyond the paper's grid.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SpatialPattern {
    /// Uniform placement (the paper's setting).
    Uniform,
    /// Gaussian hotspots: `clusters` centres drawn uniformly, each site
    /// offset from a random centre by `N(0, sigma)` per axis (clamped to
    /// the extent).
    Clustered {
        /// Number of hotspots.
        clusters: usize,
        /// Per-axis standard deviation of the offsets (m).
        sigma: f64,
    },
}

/// The rectangular spatial domain sites live in. The paper uses
/// `1000 × 1000` throughout.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SpatialExtent {
    /// Width of the extent (x ∈ [0, width)).
    pub width: f64,
    /// Height of the extent (y ∈ [0, height)).
    pub height: f64,
}

impl SpatialExtent {
    /// The paper's default extent.
    pub const PAPER: SpatialExtent = SpatialExtent { width: 1000.0, height: 1000.0 };

    /// Creates an extent.
    pub fn new(width: f64, height: f64) -> Self {
        assert!(width > 0.0 && height > 0.0, "degenerate spatial extent");
        SpatialExtent { width, height }
    }

    /// `true` when `p` lies inside the extent.
    pub fn contains(&self, p: Point) -> bool {
        p.x >= 0.0 && p.x < self.width && p.y >= 0.0 && p.y < self.height
    }

    /// Diagonal length — an upper bound on any distance of interest.
    pub fn diagonal(&self) -> f64 {
        (self.width * self.width + self.height * self.height).sqrt()
    }

    /// Draws one uniform point.
    pub fn sample(&self, rng: &mut StdRng) -> Point {
        Point::new(rng.random_range(0.0..self.width), rng.random_range(0.0..self.height))
    }

    /// Draws `n` uniform points with **distinct** locations (the paper
    /// assumes no two sites share a location; duplicates are resampled).
    pub fn sample_unique(&self, n: usize, rng: &mut StdRng) -> Vec<Point> {
        self.sample_unique_pattern(n, SpatialPattern::Uniform, rng)
    }

    /// Draws `n` distinct locations under the given placement pattern.
    pub fn sample_unique_pattern(
        &self,
        n: usize,
        pattern: SpatialPattern,
        rng: &mut StdRng,
    ) -> Vec<Point> {
        let centers: Vec<Point> = match pattern {
            SpatialPattern::Uniform => Vec::new(),
            SpatialPattern::Clustered { clusters, .. } => {
                assert!(clusters > 0, "need at least one cluster");
                (0..clusters).map(|_| self.sample(rng)).collect()
            }
        };
        let mut seen: HashSet<(u64, u64)> = HashSet::with_capacity(n);
        let mut out = Vec::with_capacity(n);
        while out.len() < n {
            let p = match pattern {
                SpatialPattern::Uniform => self.sample(rng),
                SpatialPattern::Clustered { sigma, .. } => {
                    let c = centers[rng.random_range(0..centers.len())];
                    // Clamp to just inside the half-open extent.
                    let x = (c.x + gaussian(rng) * sigma).clamp(0.0, self.width.next_down());
                    let y = (c.y + gaussian(rng) * sigma).clamp(0.0, self.height.next_down());
                    Point::new(x, y)
                }
            };
            if seen.insert((p.x.to_bits(), p.y.to_bits())) {
                out.push(p);
            }
        }
        out
    }
}

/// Standard-normal sample via Box–Muller.
fn gaussian(rng: &mut StdRng) -> f64 {
    let u1: f64 = rng.random_range(f64::EPSILON..1.0);
    let u2: f64 = rng.random_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn samples_stay_in_extent() {
        let e = SpatialExtent::new(100.0, 50.0);
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            assert!(e.contains(e.sample(&mut rng)));
        }
    }

    #[test]
    fn unique_sampling_has_no_collisions() {
        let e = SpatialExtent::PAPER;
        let mut rng = StdRng::seed_from_u64(1);
        let pts = e.sample_unique(5000, &mut rng);
        let set: HashSet<(u64, u64)> = pts.iter().map(|p| (p.x.to_bits(), p.y.to_bits())).collect();
        assert_eq!(set.len(), pts.len());
    }

    #[test]
    fn deterministic_given_seed() {
        let e = SpatialExtent::PAPER;
        let a = e.sample_unique(100, &mut StdRng::seed_from_u64(42));
        let b = e.sample_unique(100, &mut StdRng::seed_from_u64(42));
        assert_eq!(a, b);
    }

    #[test]
    fn diagonal_of_paper_extent() {
        let d = SpatialExtent::PAPER.diagonal();
        assert!((d - 1414.2135).abs() < 1e-3);
    }

    #[test]
    #[should_panic(expected = "degenerate")]
    fn zero_extent_rejected() {
        SpatialExtent::new(0.0, 10.0);
    }

    #[test]
    fn clustered_points_stay_in_extent_and_unique() {
        let e = SpatialExtent::PAPER;
        let mut rng = StdRng::seed_from_u64(4);
        let pts = e.sample_unique_pattern(
            3000,
            SpatialPattern::Clustered { clusters: 5, sigma: 60.0 },
            &mut rng,
        );
        assert_eq!(pts.len(), 3000);
        assert!(pts.iter().all(|&p| e.contains(p)));
        let set: HashSet<(u64, u64)> = pts.iter().map(|p| (p.x.to_bits(), p.y.to_bits())).collect();
        assert_eq!(set.len(), pts.len());
    }

    #[test]
    fn clustered_is_actually_concentrated() {
        // Mean nearest-neighbour distance is much smaller than uniform's.
        let e = SpatialExtent::PAPER;
        let nn_mean = |pts: &[Point]| {
            let mut total = 0.0;
            for (i, a) in pts.iter().enumerate() {
                let mut best = f64::INFINITY;
                for (j, b) in pts.iter().enumerate() {
                    if i != j {
                        best = best.min(a.dist2(*b));
                    }
                }
                total += best.sqrt();
            }
            total / pts.len() as f64
        };
        let uni =
            e.sample_unique_pattern(400, SpatialPattern::Uniform, &mut StdRng::seed_from_u64(1));
        let clu = e.sample_unique_pattern(
            400,
            SpatialPattern::Clustered { clusters: 4, sigma: 40.0 },
            &mut StdRng::seed_from_u64(1),
        );
        assert!(
            nn_mean(&clu) < nn_mean(&uni) * 0.5,
            "clustered NN {} vs uniform NN {}",
            nn_mean(&clu),
            nn_mean(&uni)
        );
    }

    #[test]
    fn clustered_deterministic() {
        let e = SpatialExtent::PAPER;
        let pat = SpatialPattern::Clustered { clusters: 3, sigma: 25.0 };
        let a = e.sample_unique_pattern(100, pat, &mut StdRng::seed_from_u64(8));
        let b = e.sample_unique_pattern(100, pat, &mut StdRng::seed_from_u64(8));
        assert_eq!(a, b);
    }
}
