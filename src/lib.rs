//! # mobiskyline
//!
//! A from-scratch Rust reproduction of **"Skyline Queries Against Mobile
//! Lightweight Devices in MANETs"** (Huang, Jensen, Lu, Ooi — ICDE 2006):
//! distributed constrained skyline queries over mobile ad hoc networks,
//! including every substrate the paper depends on.
//!
//! This crate is a facade re-exporting the workspace members:
//!
//! | Module | Crate | Contents |
//! |---|---|---|
//! | [`core`] | `skyline-core` | tuple model, dominance, BNL/SFS/D&C, constrained skyline, VDR filtering |
//! | [`storage`] | `device-storage` | flat / hybrid (ID-based) / domain / ring storage, Fig. 4 local skyline |
//! | [`datagen`] | `datagen` | IN/CO/AC generators, grid partitioning, paper example data, workloads |
//! | [`manet`] | `manet-sim` | discrete-event MANET simulator: random waypoint, unit-disk radio, AODV |
//! | [`dist`] | `dist-skyline` | the distributed protocol: SF/DF filters, EXT/OVE/UNE, BF/DF forwarding, metrics |
//!
//! ## Quickstart
//!
//! ```
//! use mobiskyline::prelude::*;
//!
//! // Build a 5×5 static network over a synthetic global relation …
//! let data = DataSpec::manet_experiment(5_000, 2, Distribution::Independent, 7).generate();
//! let net = grid_network_from_global(&data, 5, SpatialExtent::PAPER);
//!
//! // … and ask device 12 for the cheap-and-good sites within 250 m.
//! let cfg = StrategyConfig {
//!     bounds_mode: BoundsMode::Exact,
//!     exact_bounds: vec![1000.0, 1000.0],
//!     ..StrategyConfig::default()
//! };
//! let out = net.run_query(12, 250.0, &cfg);
//! assert!(!out.result.is_empty());
//! ```

pub use datagen;
pub use device_storage as storage;
pub use dist_skyline as dist;
pub use manet_sim as manet;
pub use skyline_core as core;

/// One-stop imports for the common API surface.
pub mod prelude {
    pub use datagen::{DataSpec, Distribution, GridPartitioner, SpatialExtent, WorkloadSpec};
    pub use device_storage::{
        DeviceRelation, FlatRelation, HybridRelation, LocalQuery, StorageModel,
    };
    pub use dist_skyline::config::{FilterStrategy, Forwarding, StrategyConfig};
    pub use dist_skyline::cost_model::DeviceCostModel;
    pub use dist_skyline::query::{QueryKey, QuerySpec};
    pub use dist_skyline::runtime::{run_experiment, ManetExperiment, ManetOutcome};
    pub use dist_skyline::static_net::{grid_network_from_global, StaticGridNetwork};
    pub use dist_skyline::Device;
    pub use skyline_core::algo::Algorithm;
    pub use skyline_core::vdr::{
        BoundsMode, FilterTest, FilterTuple, MultiFilterSelection, UpperBounds,
    };
    pub use skyline_core::{constrained, dominates, Mbr, Point, QueryRegion, SkylineMerger, Tuple};
}
